#include "eval/experiment.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/round_trip_rank.h"
#include "graph/builder.h"
#include "ranking/combinators.h"
#include "ranking/pagerank.h"

namespace rtr::eval {
namespace {

// A small typed graph: one "query"-type node connected to "target"-type
// nodes with decreasing weight.
struct TypedGraph {
  Graph graph;
  NodeTypeId query_type, target_type;
};

TypedGraph MakeTypedGraph() {
  GraphBuilder b;
  TypedGraph out;
  out.query_type = b.AddNodeType("q");
  out.target_type = b.AddNodeType("t");
  NodeId q0 = b.AddNode(out.query_type);  // 0
  NodeId q1 = b.AddNode(out.query_type);  // 1
  for (int i = 0; i < 4; ++i) b.AddNode(out.target_type);  // 2..5
  b.AddUndirectedEdge(q0, 2, 8.0);
  b.AddUndirectedEdge(q0, 3, 4.0);
  b.AddUndirectedEdge(q0, 4, 2.0);
  b.AddUndirectedEdge(q0, 5, 1.0);
  b.AddUndirectedEdge(q1, 5, 1.0);
  out.graph = b.Build().value();
  return out;
}

TEST(FilteredRankingTest, KeepsOnlyTargetTypeExcludingQuery) {
  TypedGraph tg = MakeTypedGraph();
  auto scorer = std::make_shared<ranking::FTScorer>(tg.graph);
  auto f = ranking::MakeFRankMeasure(scorer);
  std::vector<double> scores = f->Score({0});
  std::vector<NodeId> ranked =
      FilteredRanking(tg.graph, scores, {0}, tg.target_type, 10);
  ASSERT_EQ(ranked.size(), 4u);
  // Weight ordering: 2 > 3 > 4 > 5.
  EXPECT_EQ(ranked[0], 2u);
  EXPECT_EQ(ranked[1], 3u);
  EXPECT_EQ(ranked[2], 4u);
  EXPECT_EQ(ranked[3], 5u);
  // Query-type nodes never appear.
  for (NodeId v : ranked) {
    EXPECT_EQ(tg.graph.node_type(v), tg.target_type);
  }
}

TEST(FilteredRankingTest, LimitRespected) {
  TypedGraph tg = MakeTypedGraph();
  std::vector<double> scores(tg.graph.num_nodes(), 1.0);
  std::vector<NodeId> ranked =
      FilteredRanking(tg.graph, scores, {0}, tg.target_type, 2);
  EXPECT_EQ(ranked.size(), 2u);
}

TEST(FilteredRankingTest, QueryOfTargetTypeIsDropped) {
  TypedGraph tg = MakeTypedGraph();
  std::vector<double> scores(tg.graph.num_nodes(), 1.0);
  std::vector<NodeId> ranked =
      FilteredRanking(tg.graph, scores, {2}, tg.target_type, 10);
  for (NodeId v : ranked) EXPECT_NE(v, 2u);
  EXPECT_EQ(ranked.size(), 3u);
}

datasets::EvalTaskSet MakeTask(const TypedGraph& tg) {
  datasets::EvalTaskSet task;
  task.name = "test";
  task.graph = tg.graph;
  task.target_type = tg.target_type;
  datasets::EvalQuery q;
  q.query_nodes = {0};
  q.ground_truth = {2};
  task.test_queries.push_back(q);
  datasets::EvalQuery dev;
  dev.query_nodes = {0};
  dev.ground_truth = {2};
  task.dev_queries.push_back(dev);
  return task;
}

TEST(QueryNdcgTest, TopRankedGroundTruthGivesOne) {
  TypedGraph tg = MakeTypedGraph();
  datasets::EvalTaskSet task = MakeTask(tg);
  auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
  auto f = ranking::MakeFRankMeasure(scorer);
  EXPECT_DOUBLE_EQ(
      QueryNdcg(task.graph, *f, task.test_queries[0], task.target_type, 5),
      1.0);
}

TEST(MeanNdcgTest, AveragesOverQueries) {
  TypedGraph tg = MakeTypedGraph();
  datasets::EvalTaskSet task = MakeTask(tg);
  // Add a query whose ground truth is ranked last among the 4 targets.
  datasets::EvalQuery bad;
  bad.query_nodes = {0};
  bad.ground_truth = {5};
  task.test_queries.push_back(bad);
  auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
  auto f = ranking::MakeFRankMeasure(scorer);
  double ndcg5 = MeanNdcg(task.graph, *f, task, 5);
  EXPECT_GT(ndcg5, 0.5);  // first query contributes 1.0
  EXPECT_LT(ndcg5, 1.0);  // second query contributes < 1.0
}

TEST(TuneBetaTest, PicksGridPointMaximizingDevNdcg) {
  TypedGraph tg = MakeTypedGraph();
  datasets::EvalTaskSet task = MakeTask(tg);
  auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
  MeasureFactory factory = [&](double beta) {
    return core::MakeRoundTripRankPlusMeasure(scorer, beta);
  };
  double beta = TuneBeta(task, factory, DefaultBetaGrid());
  EXPECT_GE(beta, 0.0);
  EXPECT_LE(beta, 1.0);
}

TEST(TuneBetaTest, NoDevQueriesFallsBackToHalf) {
  TypedGraph tg = MakeTypedGraph();
  datasets::EvalTaskSet task = MakeTask(tg);
  task.dev_queries.clear();
  MeasureFactory factory = [&](double) {
    auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
    return ranking::MakeFRankMeasure(scorer);
  };
  EXPECT_DOUBLE_EQ(TuneBeta(task, factory, DefaultBetaGrid()), 0.5);
}

TEST(TuneBetaTest, DiscriminatesWhenOneBetaClearlyBetter) {
  // Ground truth node is reachable but unpopular: a directed structure where
  // specificity (t) ranks it first while importance (f) ranks it last.
  GraphBuilder b;
  NodeTypeId qt = b.AddNodeType("q");
  NodeTypeId tt = b.AddNodeType("t");
  NodeId q = b.AddNode(qt);      // 0
  NodeId hub = b.AddNode(tt);    // 1: popular, unspecific
  NodeId niche = b.AddNode(tt);  // 2: returns to q reliably
  NodeId other = b.AddNode(qt);  // 3: another source feeding the hub
  b.AddDirectedEdge(q, hub, 10.0);
  b.AddDirectedEdge(q, niche, 1.0);
  b.AddDirectedEdge(niche, q, 10.0);
  b.AddDirectedEdge(hub, other, 10.0);
  b.AddDirectedEdge(other, hub, 10.0);
  b.AddDirectedEdge(hub, q, 0.5);
  Graph g = b.Build().value();

  datasets::EvalTaskSet task;
  task.graph = g;
  task.target_type = tt;
  datasets::EvalQuery dev;
  dev.query_nodes = {q};
  dev.ground_truth = {niche};
  task.dev_queries.push_back(dev);

  auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
  MeasureFactory factory = [&](double beta) {
    return core::MakeRoundTripRankPlusMeasure(scorer, beta);
  };
  double beta = TuneBeta(task, factory, DefaultBetaGrid());
  EXPECT_GT(beta, 0.5);  // specificity wins on this construction
}

TEST(TablePrinterTest, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::FormatDouble(0.12345, 4), "0.1235");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 1), "2.0");
}

TEST(TablePrinterDeathTest, RowWidthMismatchChecks) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK");
}

}  // namespace
}  // namespace rtr::eval
