#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rtr::eval {
namespace {

TEST(NdcgTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(NdcgAtK({7, 3, 9}, {7, 3, 9}, 3), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({7, 3, 9, 1, 2}, {7}, 5), 1.0);
}

TEST(NdcgTest, MissedGroundTruthIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2, 3}, {9}, 3), 0.0);
}

TEST(NdcgTest, EmptyGroundTruthIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2, 3}, {}, 3), 0.0);
}

TEST(NdcgTest, SingleRelevantAtRankTwo) {
  // DCG = 1/log2(3); IDCG = 1/log2(2) = 1.
  EXPECT_NEAR(NdcgAtK({5, 9, 6}, {9}, 3), 1.0 / std::log2(3.0), 1e-12);
}

TEST(NdcgTest, KnownMixedCase) {
  // Relevant = {a, b}; ranked: a, x, b => DCG = 1 + 1/log2(4);
  // IDCG = 1 + 1/log2(3).
  double dcg = 1.0 + 1.0 / std::log2(4.0);
  double idcg = 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK({1, 99, 2}, {1, 2}, 3), dcg / idcg, 1e-12);
}

TEST(NdcgTest, CutoffKIgnoresLaterHits) {
  EXPECT_DOUBLE_EQ(NdcgAtK({5, 6, 9}, {9}, 2), 0.0);
}

TEST(NdcgTest, RankedShorterThanK) {
  EXPECT_DOUBLE_EQ(NdcgAtK({9}, {9}, 10), 1.0);
}

TEST(NdcgTest, MoreGroundTruthThanK) {
  // k = 1, two relevant: ideal has one hit at rank 1.
  EXPECT_DOUBLE_EQ(NdcgAtK({1}, {1, 2}, 1), 1.0);
}

TEST(PrecisionTest, FullOverlap) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3}, {3, 2, 1}, 3), 1.0);
}

TEST(PrecisionTest, PartialOverlap) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3, 4}, {2, 9, 4, 8}, 4), 0.5);
}

TEST(PrecisionTest, EmptyReferenceZero) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2}, {}, 2), 0.0);
}

TEST(PrecisionTest, ReferenceSmallerThanK) {
  // 1 relevant among top-3, reference size 1: precision 1.
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3}, {2}, 3), 1.0);
}

TEST(KendallTauTest, PerfectOrderIsOne) {
  std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  EXPECT_DOUBLE_EQ(KendallTauAgainstScores({0, 1, 2, 3}, scores), 1.0);
}

TEST(KendallTauTest, ReversedOrderIsMinusOne) {
  std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  EXPECT_DOUBLE_EQ(KendallTauAgainstScores({3, 2, 1, 0}, scores), -1.0);
}

TEST(KendallTauTest, OneSwapOfThree) {
  std::vector<double> scores = {0.9, 0.8, 0.7};
  // Order {1, 0, 2}: pairs (1,0) discordant; (1,2), (0,2) concordant.
  EXPECT_NEAR(KendallTauAgainstScores({1, 0, 2}, scores), (2.0 - 1.0) / 3.0,
              1e-12);
}

TEST(KendallTauTest, TiesContributeZero) {
  std::vector<double> scores = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(KendallTauAgainstScores({0, 1}, scores), 0.0);
}

TEST(KendallTauTest, TrivialListIsOne) {
  std::vector<double> scores = {0.5};
  EXPECT_DOUBLE_EQ(KendallTauAgainstScores({0}, scores), 1.0);
  EXPECT_DOUBLE_EQ(KendallTauAgainstScores({}, scores), 1.0);
}

}  // namespace
}  // namespace rtr::eval
