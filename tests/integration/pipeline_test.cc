// Integration tests: full pipelines across modules — dataset generation ->
// task construction -> measures -> evaluation, and the exact engine vs the
// online engine vs the distributed replay on the same data.
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/round_trip_rank.h"
#include "core/twosbound.h"
#include "datasets/bibnet.h"
#include "datasets/qlog.h"
#include "dist/distributed_topk.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "ranking/combinators.h"
#include "ranking/pagerank.h"

namespace rtr {
namespace {

datasets::BibNetConfig SmallBibNetConfig() {
  datasets::BibNetConfig config;
  config.num_areas = 2;
  config.topics_per_area = 3;
  config.num_authors = 300;
  config.num_papers = 1200;
  config.terms_per_topic = 20;
  config.shared_terms = 60;
  return config;
}

datasets::QLogConfig SmallQLogConfig() {
  datasets::QLogConfig config;
  config.num_concepts = 500;
  config.num_portal_urls = 12;
  return config;
}

TEST(PipelineIntegrationTest, AuthorTaskBeatsRandomByWideMargin) {
  datasets::BibNet bibnet =
      datasets::BibNet::Generate(SmallBibNetConfig()).value();
  datasets::EvalTaskSet task = bibnet.MakeAuthorTask(30, 0, 3).value();
  auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
  auto rtrank = core::MakeRoundTripRankMeasure(scorer);
  double mean = eval::MeanNdcg(task.graph, *rtrank, task, 5);
  // Random ranking over ~300 authors would score ~0.01; the measure must be
  // far above chance, demonstrating end-to-end signal.
  EXPECT_GT(mean, 0.15);
}

TEST(PipelineIntegrationTest, RoundTripRankBeatsExtremesOnAuthorTask) {
  datasets::BibNet bibnet =
      datasets::BibNet::Generate(SmallBibNetConfig()).value();
  datasets::EvalTaskSet task = bibnet.MakeAuthorTask(40, 0, 5).value();
  auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
  auto balanced = core::MakeRoundTripRankMeasure(scorer);
  auto t_only = ranking::MakeTRankMeasure(scorer);
  double balanced_ndcg = eval::MeanNdcg(task.graph, *balanced, task, 5);
  double t_ndcg = eval::MeanNdcg(task.graph, *t_only, task, 5);
  // The paper's Fig. 5 Task 1 shape: the dual-sensed measure clearly beats
  // pure specificity.
  EXPECT_GT(balanced_ndcg, t_ndcg);
}

TEST(PipelineIntegrationTest, EquivalentPhraseTaskSolvableOnQLog) {
  datasets::QLog qlog = datasets::QLog::Generate(SmallQLogConfig()).value();
  datasets::EvalTaskSet task =
      qlog.MakeEquivalentPhraseTask(30, 0, 7).value();
  auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
  auto rtrank = core::MakeRoundTripRankMeasure(scorer);
  EXPECT_GT(eval::MeanNdcg(task.graph, *rtrank, task, 5), 0.4);
}

TEST(PipelineIntegrationTest, TwoSBoundAgreesWithExactOnBibNet) {
  datasets::BibNet bibnet =
      datasets::BibNet::Generate(SmallBibNetConfig()).value();
  const Graph& g = bibnet.graph();
  core::TopKParams params;
  params.k = 10;
  params.epsilon = 1e-4;
  for (NodeId q : {bibnet.papers()[10].node, bibnet.papers()[500].node}) {
    core::TopKResult approx = core::TopKRoundTripRank(g, {q}, params).value();
    ASSERT_TRUE(approx.converged);
    std::vector<double> exact = core::ExactRoundTripRankScores(g, {q});
    ASSERT_EQ(approx.entries.size(), 10u);
    // Epsilon contract against the exact scores.
    double kth = exact[approx.entries.back().node];
    std::set<NodeId> returned;
    for (const auto& entry : approx.entries) returned.insert(entry.node);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!returned.count(v)) {
        EXPECT_LT(exact[v], kth + params.epsilon);
      }
    }
  }
}

TEST(PipelineIntegrationTest, DistributedMatchesLocalOnQLogSnapshot) {
  datasets::QLog qlog = datasets::QLog::Generate(SmallQLogConfig()).value();
  Subgraph snap = qlog.Snapshot(15).value();
  const Graph& g = snap.graph;
  core::TopKParams params;
  params.k = 5;
  params.epsilon = 0.005;
  // Aliasing shared_ptr: the snapshot's graph outlives the cluster here.
  dist::Cluster cluster({std::shared_ptr<const Graph>{}, &g}, 3);
  NodeId query = 0;
  while (g.out_degree(query) == 0) ++query;
  core::TopKResult local = core::TopKRoundTripRank(g, {query}, params).value();
  dist::DistributedTopKResult distributed =
      dist::DistributedTopK(cluster, {query}, params).value();
  ASSERT_EQ(distributed.topk.entries.size(), local.entries.size());
  for (size_t i = 0; i < local.entries.size(); ++i) {
    EXPECT_EQ(distributed.topk.entries[i].node, local.entries[i].node);
  }
}

TEST(PipelineIntegrationTest, BetaTuningImprovesOverWorstGridPoint) {
  datasets::QLog qlog = datasets::QLog::Generate(SmallQLogConfig()).value();
  datasets::EvalTaskSet task =
      qlog.MakeEquivalentPhraseTask(25, 25, 11).value();
  auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
  eval::MeasureFactory factory = [&scorer](double beta) {
    return core::MakeRoundTripRankPlusMeasure(scorer, beta);
  };
  double beta = eval::TuneBeta(task, factory, eval::DefaultBetaGrid());
  auto tuned = factory(beta);
  double tuned_ndcg = eval::MeanNdcg(task.graph, *tuned, task, 5);
  double worst = 1.0;
  for (double b : eval::DefaultBetaGrid()) {
    auto measure = factory(b);
    worst = std::min(worst, eval::MeanNdcg(task.graph, *measure, task, 5));
  }
  EXPECT_GE(tuned_ndcg, worst);
}

TEST(PipelineIntegrationTest, WholePipelineIsDeterministic) {
  auto run = [] {
    datasets::BibNet bibnet =
        datasets::BibNet::Generate(SmallBibNetConfig()).value();
    datasets::EvalTaskSet task = bibnet.MakeVenueTask(10, 0, 13).value();
    auto scorer = std::make_shared<ranking::FTScorer>(task.graph);
    auto rtrank = core::MakeRoundTripRankMeasure(scorer);
    return eval::MeanNdcg(task.graph, *rtrank, task, 5);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(PipelineIntegrationTest, SnapshotQueriesWorkAcrossGrowth) {
  datasets::BibNet bibnet =
      datasets::BibNet::Generate(SmallBibNetConfig()).value();
  core::TopKParams params;
  params.k = 5;
  params.epsilon = 0.01;
  size_t prev_nodes = 0;
  for (int year : {1998, 2004, 2010}) {
    Subgraph snap = bibnet.Snapshot(year).value();
    EXPECT_GT(snap.graph.num_nodes(), prev_nodes);
    prev_nodes = snap.graph.num_nodes();
    NodeId query = 0;
    while (snap.graph.out_degree(query) == 0) ++query;
    core::TopKResult result =
        core::TopKRoundTripRank(snap.graph, {query}, params).value();
    EXPECT_FALSE(result.entries.empty());
    EXPECT_LE(result.active_nodes, snap.graph.num_nodes());
  }
}

}  // namespace
}  // namespace rtr
