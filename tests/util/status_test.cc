#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace rtr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad weight");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad weight");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad weight");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, UnavailableToString) {
  // The serving layer's load-shedding code; keep the name stable for logs.
  EXPECT_EQ(Status::Unavailable("queue full").ToString(),
            "Unavailable: queue full");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  StatusOr<int> h = Half(x);
  RTR_RETURN_IF_ERROR(h.status());
  *out = h.value();
  return Status::OK();
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrDeathTest, ValueOnErrorChecks) {
  StatusOr<int> v(Status::Internal("boom"));
  EXPECT_DEATH((void)v.value(), "StatusOr::value on error");
}

}  // namespace
}  // namespace rtr
