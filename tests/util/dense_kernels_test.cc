// The vectorized gather-multiply-accumulate kernels: the portable and
// AVX2 paths must be bit-identical (same fixed 4-lane association, no
// FMA), the f32 kernels must match their documented widening semantics,
// and the f32 ranking error must stay within the bounded delta the top-K
// epsilon slack absorbs.
#include "util/dense_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/round_trip_rank.h"
#include "core/twosbound.h"
#include "datasets/bibnet.h"
#include "graph/graph.h"
#include "ranking/pagerank.h"
#include "util/random.h"

namespace rtr {
namespace {

// Reference implementation of the documented accumulation order: four
// independent lane accumulators over i+0..i+3, scalar tail into lane
// (i & 3), combined as (l0 + l1) + (l2 + l3). Both kernel variants must
// reproduce these exact doubles.
template <typename Prob>
double ReferenceGatherDot(const uint32_t* idx, const Prob* probs, size_t n,
                          const double* x) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) {
      lanes[j] += static_cast<double>(probs[i + j]) * x[idx[i + j]];
    }
  }
  for (; i < n; ++i) {
    lanes[i & 3] += static_cast<double>(probs[i]) * x[idx[i]];
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

struct GatherFixture {
  std::vector<uint32_t> idx;
  std::vector<double> probs;
  std::vector<float> probs32;
  std::vector<double> x;
};

GatherFixture MakeFixture(uint64_t seed, size_t n, size_t num_nodes = 97) {
  Rng rng(seed);
  GatherFixture f;
  f.x.resize(num_nodes);
  for (double& v : f.x) v = rng.NextDouble() * 2.0 - 1.0;
  f.idx.resize(n);
  f.probs.resize(n);
  f.probs32.resize(n);
  for (size_t i = 0; i < n; ++i) {
    f.idx[i] = static_cast<uint32_t>(rng.NextUint64(num_nodes));
    f.probs[i] = rng.NextDouble();
    f.probs32[i] = static_cast<float>(f.probs[i]);
  }
  return f;
}

// Restores the dispatch switches on scope exit so one test's toggles never
// leak into another.
struct KernelSwitchGuard {
  bool simd = util::SimdEnabled();
  bool f32 = util::F32KernelsEnabled();
  ~KernelSwitchGuard() {
    util::SetSimdEnabled(simd);
    util::SetF32Kernels(f32);
  }
};

TEST(DenseKernelsTest, MatchesReferenceAtEveryLength) {
  // Lengths straddling the 4-wide main loop and its tail: the association
  // contract has to hold for every tail shape.
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u, 31u, 100u}) {
    GatherFixture f = MakeFixture(/*seed=*/n + 1, n);
    EXPECT_EQ(util::GatherDotF64(f.idx.data(), f.probs.data(), n, f.x.data()),
              ReferenceGatherDot(f.idx.data(), f.probs.data(), n, f.x.data()))
        << "n=" << n;
    EXPECT_EQ(
        util::GatherDotF32(f.idx.data(), f.probs32.data(), n, f.x.data()),
        ReferenceGatherDot(f.idx.data(), f.probs32.data(), n, f.x.data()))
        << "n=" << n;
  }
}

TEST(DenseKernelsTest, PortableAndSimdAreBitIdentical) {
  KernelSwitchGuard guard;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    GatherFixture f = MakeFixture(seed, /*n=*/257);
    util::SetSimdEnabled(false);
    ASSERT_STREQ(util::DenseKernelIsa(), "portable");
    const double portable_f64 =
        util::GatherDotF64(f.idx.data(), f.probs.data(), f.idx.size(),
                           f.x.data());
    const double portable_f32 =
        util::GatherDotF32(f.idx.data(), f.probs32.data(), f.idx.size(),
                           f.x.data());
    util::SetSimdEnabled(true);
    // On a non-AVX2 host re-enabling keeps the portable path; the equality
    // below then holds trivially.
    const double simd_f64 = util::GatherDotF64(
        f.idx.data(), f.probs.data(), f.idx.size(), f.x.data());
    const double simd_f32 = util::GatherDotF32(
        f.idx.data(), f.probs32.data(), f.idx.size(), f.x.data());
    EXPECT_EQ(portable_f64, simd_f64) << "seed=" << seed;
    EXPECT_EQ(portable_f32, simd_f32) << "seed=" << seed;
  }
}

TEST(DenseKernelsTest, DuplicateIndicesGatherCorrectly) {
  // Parallel arcs hit the same x[] slot repeatedly; the gather must read
  // it once per lane, not deduplicate.
  std::vector<uint32_t> idx = {3, 3, 3, 3, 3};
  std::vector<double> probs = {0.1, 0.2, 0.3, 0.4, 0.5};
  std::vector<double> x(8, 0.0);
  x[3] = 2.0;
  EXPECT_EQ(util::GatherDotF64(idx.data(), probs.data(), idx.size(), x.data()),
            ReferenceGatherDot(idx.data(), probs.data(), idx.size(), x.data()));
}

TEST(DenseKernelsTest, IsaReportsTheActiveDispatch) {
  KernelSwitchGuard guard;
  util::SetSimdEnabled(false);
  EXPECT_STREQ(util::DenseKernelIsa(), "portable");
  util::SetSimdEnabled(true);
  const std::string isa = util::DenseKernelIsa();
  EXPECT_TRUE(isa == "avx2" || isa == "portable") << isa;
}

datasets::BibNetConfig SmallBibNetConfig() {
  datasets::BibNetConfig config;
  config.num_areas = 2;
  config.topics_per_area = 3;
  config.num_authors = 300;
  config.num_papers = 1200;
  config.terms_per_topic = 20;
  config.shared_terms = 60;
  return config;
}

TEST(DenseKernelsTest, FRankIsBitIdenticalAcrossSimdToggle) {
  KernelSwitchGuard guard;
  util::SetF32Kernels(false);
  const datasets::BibNet net =
      datasets::BibNet::Generate(SmallBibNetConfig()).value();
  const Graph& g = net.graph();
  const Query query = {0, 42};

  std::vector<double> scalar_f, scalar_t, scratch;
  util::SetSimdEnabled(false);
  ranking::FRankInto(g, query, {}, &scalar_f, &scratch);
  ranking::TRankInto(g, query, {}, &scalar_t, &scratch);

  std::vector<double> simd_f, simd_t;
  util::SetSimdEnabled(true);
  ranking::FRankInto(g, query, {}, &simd_f, &scratch);
  ranking::TRankInto(g, query, {}, &simd_t, &scratch);

  ASSERT_EQ(scalar_f.size(), simd_f.size());
  for (size_t v = 0; v < scalar_f.size(); ++v) {
    EXPECT_EQ(scalar_f[v], simd_f[v]) << "f-rank node " << v;
    EXPECT_EQ(scalar_t[v], simd_t[v]) << "t-rank node " << v;
  }
}

// The f32 columns perturb each transition probability by at most one
// float ulp (relative ~6e-8); after a convergent power iteration the
// per-node score error stays far below the top-K epsilon slack. This test
// pins the bound the DESIGN doc promises.
TEST(DenseKernelsTest, F32RankDeltaIsBounded) {
  KernelSwitchGuard guard;
  const datasets::BibNet net =
      datasets::BibNet::Generate(SmallBibNetConfig()).value();
  Graph g = net.graph();
  g.PopulateF32Probs();
  const Query query = {7};

  std::vector<double> exact, approx, scratch;
  util::SetF32Kernels(false);
  ranking::FRankInto(g, query, {}, &exact, &scratch);
  util::SetF32Kernels(true);
  ranking::FRankInto(g, query, {}, &approx, &scratch);

  ASSERT_EQ(exact.size(), approx.size());
  double max_abs = 0.0;
  for (size_t v = 0; v < exact.size(); ++v) {
    max_abs = std::max(max_abs, std::abs(exact[v] - approx[v]));
  }
  // The F-Rank vector sums to 1; a 1e-6 absolute ceiling leaves the
  // eps=0.01 top-K slack four orders of magnitude of headroom.
  EXPECT_LT(max_abs, 1e-6);
  EXPECT_GT(max_abs, 0.0);  // the f32 path really ran
}

// Permutation stability: at eps in {0.01, 0.03}, swapping the f64 kernels
// for f32 may only permute the top-K among near-ties — every node the f32
// run returns must have an exact (f64) score within the epsilon band of
// the exact run's k-th score.
TEST(DenseKernelsTest, F32TopKIsPermutationStableAtEps) {
  KernelSwitchGuard guard;
  const datasets::BibNet net =
      datasets::BibNet::Generate(SmallBibNetConfig()).value();
  Graph g = net.graph();
  g.PopulateF32Probs();

  auto scorer = std::make_shared<ranking::FTScorer>(g);
  auto measure = core::MakeRoundTripRankMeasure(scorer);

  for (double eps : {0.01, 0.03}) {
    core::TopKParams params;
    params.k = 10;
    params.epsilon = eps;
    for (NodeId q : {NodeId{3}, NodeId{250}, NodeId{900}}) {
      util::SetF32Kernels(false);
      StatusOr<core::TopKResult> exact =
          core::TopKRoundTripRank(g, {q}, params);
      const std::vector<double> scores = measure->Score({q});
      util::SetF32Kernels(true);
      StatusOr<core::TopKResult> approx =
          core::TopKRoundTripRank(g, {q}, params);
      ASSERT_TRUE(exact.ok() && approx.ok());
      ASSERT_EQ(exact->entries.size(), approx->entries.size());

      // Exact score of the weakest member of the exact top-K.
      double kth = std::numeric_limits<double>::infinity();
      std::set<NodeId> exact_nodes;
      for (const core::TopKEntry& e : exact->entries) {
        exact_nodes.insert(e.node);
        kth = std::min(kth, scores[e.node]);
      }
      for (const core::TopKEntry& e : approx->entries) {
        if (exact_nodes.count(e.node) > 0) continue;
        // A swapped-in node must be an epsilon-near-tie of the k-th exact
        // score (1e-9 absorbs the f32 cast noise itself).
        EXPECT_GE(scores[e.node], kth / (1.0 + eps) - 1e-9)
            << "eps=" << eps << " q=" << q << " node=" << e.node;
      }
    }
  }
}

}  // namespace
}  // namespace rtr
