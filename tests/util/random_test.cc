#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace rtr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(7);
  uint64_t first = rng.NextUint64();
  rng.NextUint64();
  rng.Seed(7);
  EXPECT_EQ(rng.NextUint64(), first);
}

TEST(RngTest, BoundedUintRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedUintCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextUint64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  // E[Geo(p)] (failures before success) = (1-p)/p.
  Rng rng(19);
  const double p = 0.25;
  double sum = 0.0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextGeometric(p);
  EXPECT_NEAR(sum / kN, (1 - p) / p, 0.08);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextGeometric(1.0), 0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  const int kN = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    double x = rng.NextGaussian(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / kN;
  double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, WeightedSamplingProportions) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int kN = 30000;
  for (int i = 0; i < kN; ++i) counts[rng.NextWeighted(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t x : sample) EXPECT_LT(x, 100u);
  }
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (size_t k = 0; k < zipf.n(); ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSamplerTest, PmfDecreasing) {
  ZipfSampler zipf(50, 0.9);
  for (size_t k = 1; k < zipf.n(); ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1) + 1e-15);
  }
}

TEST(ZipfSamplerTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(43);
  std::vector<int> counts(10, 0);
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) counts[zipf.Sample(rng)]++;
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfSamplerTest, SingleElement) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(47);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.Pmf(0), 1.0);
}

}  // namespace
}  // namespace rtr
