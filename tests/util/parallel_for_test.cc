#include "util/parallel_for.h"

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/round_trip_rank.h"
#include "graph/builder.h"
#include "ranking/pagerank.h"
#include "util/random.h"

namespace rtr::util {
namespace {

// Restores the pool width on scope exit so tests do not leak their thread
// count into each other (the pool is process-wide).
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) : previous_(NumThreads()) {
    SetNumThreads(n);
  }
  ~ScopedNumThreads() { SetNumThreads(previous_); }

 private:
  int previous_;
};

Graph RandomGraph(uint64_t seed, size_t n) {
  Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddUndirectedEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                        0.5 + rng.NextDouble());
  }
  for (size_t extra = 0; extra < 3 * n; ++extra) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u != v) b.AddDirectedEdge(u, v, 0.5 + rng.NextDouble());
  }
  return b.Build().value();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedNumThreads threads(4);
  const size_t n = 10007;  // prime: exercises the ragged tail chunk
  std::vector<std::atomic<int>> touched(n);
  ParallelFor(n, 128, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ParallelForTest, ChunkGeometryIgnoresThreadCount) {
  // The determinism contract: geometry is a pure function of (n, grain).
  EXPECT_EQ(ChunkCount(0, 64), 0u);
  EXPECT_EQ(ChunkCount(1, 64), 1u);
  EXPECT_EQ(ChunkCount(64, 64), 1u);
  EXPECT_EQ(ChunkCount(65, 64), 2u);
  const size_t reference = ChunkCount(100000, 1000);
  for (int threads : {1, 2, 7}) {
    ScopedNumThreads scoped(threads);
    EXPECT_EQ(ChunkCount(100000, 1000), reference);
  }
  // kMaxChunks caps the chunk count for huge n.
  EXPECT_LE(ChunkCount(100000000, 1), kMaxChunks);
}

TEST(ParallelForTest, BalancedChunkBoundsAreMonotoneAndComplete) {
  Graph g = RandomGraph(3, 500);
  size_t bounds[kMaxChunks + 1];
  size_t chunks = BalancedChunkBounds(g.out_offsets().data(), g.num_nodes(),
                                      64, bounds);
  ASSERT_GE(chunks, 1u);
  ASSERT_LE(chunks, kMaxChunks);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[chunks], g.num_nodes());
  for (size_t c = 0; c < chunks; ++c) EXPECT_LE(bounds[c], bounds[c + 1]);
}

TEST(ParallelForTest, PerChunkPartialsReduceDeterministically) {
  // A floating-point reduction whose per-chunk partials are summed in chunk
  // order must be bit-identical at any thread count.
  const size_t n = 50000;
  std::vector<double> values(n);
  Rng rng(17);
  for (double& v : values) v = rng.NextDouble() - 0.5;
  auto reduce = [&] {
    double partial[kMaxChunks] = {0.0};
    size_t chunks = ChunkCount(n, 1024);
    ParallelFor(n, 1024, [&](size_t chunk, size_t begin, size_t end) {
      double sum = 0.0;
      for (size_t i = begin; i < end; ++i) sum += std::sin(values[i]);
      partial[chunk] = sum;
    });
    double total = 0.0;
    for (size_t c = 0; c < chunks; ++c) total += partial[c];
    return total;
  };
  SetNumThreads(1);
  double serial = reduce();
  for (int threads : {2, 4, 8}) {
    ScopedNumThreads scoped(threads);
    EXPECT_EQ(serial, reduce()) << threads << " threads";
  }
  SetNumThreads(0);  // restore default
}

TEST(ParallelForTest, StepForwardIdenticalAcrossThreadCounts) {
  // The ISSUE-mandated determinism check: 1 vs N threads produce identical
  // StepForward (and StepBackward) output, bit for bit.
  Graph g = RandomGraph(5, 2000);
  std::vector<double> dist(g.num_nodes(), 0.0);
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    dist[static_cast<size_t>(rng.NextUint64(g.num_nodes()))] =
        rng.NextDouble();
  }
  std::vector<double> forward_1thread, backward_1thread;
  {
    ScopedNumThreads scoped(1);
    core::StepForwardInto(g, dist, &forward_1thread);
    core::StepBackwardInto(g, dist, &backward_1thread);
  }
  for (int threads : {2, 4, 8}) {
    ScopedNumThreads scoped(threads);
    std::vector<double> forward, backward;
    core::StepForwardInto(g, dist, &forward);
    core::StepBackwardInto(g, dist, &backward);
    ASSERT_EQ(forward.size(), forward_1thread.size());
    for (size_t v = 0; v < forward.size(); ++v) {
      EXPECT_EQ(forward[v], forward_1thread[v])
          << "node " << v << " at " << threads << " threads";
      EXPECT_EQ(backward[v], backward_1thread[v])
          << "node " << v << " at " << threads << " threads";
    }
  }
}

TEST(ParallelForTest, FRankIdenticalAcrossThreadCounts) {
  Graph g = RandomGraph(7, 3000);
  std::vector<double> f1, t1;
  {
    ScopedNumThreads scoped(1);
    f1 = ranking::FRank(g, {0, 42});
    t1 = ranking::TRank(g, {0, 42});
  }
  {
    ScopedNumThreads scoped(4);
    std::vector<double> f4 = ranking::FRank(g, {0, 42});
    std::vector<double> t4 = ranking::TRank(g, {0, 42});
    for (size_t v = 0; v < f1.size(); ++v) {
      EXPECT_EQ(f1[v], f4[v]) << "node " << v;
      EXPECT_EQ(t1[v], t4[v]) << "node " << v;
    }
  }
}

TEST(ParallelForTest, ConcurrentCallersSerializeSafely) {
  // serve::QueryService workers may hit the pool concurrently; jobs must
  // queue without deadlock or cross-talk.
  ScopedNumThreads scoped(2);
  const size_t n = 20000;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      std::vector<uint64_t> out(n);
      for (int round = 0; round < 20; ++round) {
        ParallelFor(n, 512, [&](size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            out[i] = i * 2654435761u + static_cast<uint64_t>(t);
          }
        });
        for (size_t i = 0; i < n; ++i) {
          if (out[i] != i * 2654435761u + static_cast<uint64_t>(t)) {
            failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& c : callers) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParallelForTest, SetNumThreadsResizesPool) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(0);  // back to default
  EXPECT_GE(NumThreads(), 1);
}

}  // namespace
}  // namespace rtr::util
