#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace rtr {
namespace {

TEST(SummarizeTest, EmptySample) {
  SummaryStats s = Summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(SummarizeTest, AllEqualSampleHasZeroSpread) {
  SummaryStats s = Summarize({3.5, 3.5, 3.5, 3.5});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.ConfidenceHalfWidth(0.99), 0.0);
}

TEST(SummarizeTest, SingleNegativeValue) {
  SummaryStats s = Summarize({-2.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, -2.0);
  EXPECT_DOUBLE_EQ(s.min, -2.0);
  EXPECT_DOUBLE_EQ(s.max, -2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  SummaryStats s = Summarize({4.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(SummarizeTest, KnownSample) {
  SummaryStats s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev with n-1 = 7: sum of squares = 32, sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(StudentTCdfTest, SymmetryAndMidpoint) {
  EXPECT_DOUBLE_EQ(StudentTCdf(0.0, 5.0), 0.5);
  for (double t : {0.5, 1.0, 2.3}) {
    EXPECT_NEAR(StudentTCdf(t, 7.0) + StudentTCdf(-t, 7.0), 1.0, 1e-12);
  }
}

TEST(StudentTCdfTest, KnownQuantiles) {
  // Classic t-table values: P(T <= t) = 0.975.
  EXPECT_NEAR(StudentTCdf(12.706, 1.0), 0.975, 1e-3);
  EXPECT_NEAR(StudentTCdf(2.228, 10.0), 0.975, 1e-3);
  EXPECT_NEAR(StudentTCdf(1.984, 100.0), 0.975, 1e-3);
  // One-sided 95%.
  EXPECT_NEAR(StudentTCdf(1.812, 10.0), 0.95, 1e-3);
}

TEST(StudentTCdfTest, LargeDfApproachesNormal) {
  // For df=1e6, t=1.96 should be ~0.975 (normal value).
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), 0.975, 1e-3);
}

TEST(StudentTQuantileTest, InvertsCdf) {
  for (double df : {3.0, 10.0, 30.0}) {
    for (double p : {0.6, 0.9, 0.975, 0.995}) {
      double q = StudentTQuantile(p, df);
      EXPECT_NEAR(StudentTCdf(q, df), p, 1e-9);
    }
  }
}

TEST(ConfidenceHalfWidthTest, MatchesManualComputation) {
  SummaryStats s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  // hw = t_{0.995, 4} * stddev / sqrt(5); t_{0.995,4} = 4.604.
  double hw = s.ConfidenceHalfWidth(0.99);
  EXPECT_NEAR(hw, 4.604 * s.stddev / std::sqrt(5.0), 2e-3);
}

TEST(ConfidenceHalfWidthTest, ZeroForTinySamples) {
  EXPECT_EQ(Summarize({}).ConfidenceHalfWidth(0.99), 0.0);
  EXPECT_EQ(Summarize({1.0}).ConfidenceHalfWidth(0.99), 0.0);
}

TEST(PairedTTestTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {0.1, 0.2, 0.3, 0.4};
  PairedTTestResult r = PairedTTest(a, a);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_FALSE(r.SignificantAt(0.05));
}

TEST(PairedTTestTest, ConstantShiftIsMaximallySignificant) {
  std::vector<double> a = {0.5, 0.6, 0.7};
  std::vector<double> b = {0.4, 0.5, 0.6};
  PairedTTestResult r = PairedTTest(a, b);
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
  EXPECT_NEAR(r.mean_difference, 0.1, 1e-12);
  EXPECT_TRUE(r.SignificantAt(0.01));
}

TEST(PairedTTestTest, KnownTStatistic) {
  // Differences: {1, 2, 3, 4, 5}; mean 3, sd sqrt(2.5), n=5.
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {0, 0, 0, 0, 0};
  PairedTTestResult r = PairedTTest(a, b);
  EXPECT_NEAR(r.t_statistic, 3.0 / (std::sqrt(2.5) / std::sqrt(5.0)), 1e-9);
  EXPECT_EQ(r.degrees_of_freedom, 4u);
  EXPECT_LT(r.p_value, 0.05);
  EXPECT_GT(r.p_value, 0.001);
}

TEST(PairedTTestTest, NoisyEqualMeansNotSignificant) {
  std::vector<double> a = {0.50, 0.61, 0.40, 0.55, 0.49, 0.62};
  std::vector<double> b = {0.51, 0.60, 0.41, 0.54, 0.50, 0.61};
  PairedTTestResult r = PairedTTest(a, b);
  EXPECT_FALSE(r.SignificantAt(0.01));
}

TEST(PairedTTestTest, DirectionalityOfT) {
  std::vector<double> lo = {0.1, 0.15, 0.2, 0.12};
  std::vector<double> hi = {0.3, 0.31, 0.45, 0.38};
  EXPECT_LT(PairedTTest(lo, hi).t_statistic, 0.0);
  EXPECT_GT(PairedTTest(hi, lo).t_statistic, 0.0);
}

}  // namespace
}  // namespace rtr
