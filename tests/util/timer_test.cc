#include "util/timer.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace rtr {
namespace {

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  double first = timer.ElapsedSeconds();
  double second = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

TEST(WallTimerTest, UnitsAreConsistent) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Reads happen at increasing instants, so each coarser-unit reading
  // bounds the finer ones taken before it.
  double seconds = timer.ElapsedSeconds();
  double millis = timer.ElapsedMillis();
  double micros = timer.ElapsedMicros();
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_GE(micros, millis * 1e3);
}

TEST(WallTimerTest, MeasuresSleepsAtLeastApproximately) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // steady_clock may not tick during the whole sleep on a loaded machine,
  // but it can never report less than ~the requested duration.
  EXPECT_GE(timer.ElapsedMillis(), 19.0);
}

TEST(WallTimerTest, RestartResetsTheOrigin) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  double before = timer.ElapsedMillis();
  timer.Restart();
  double after = timer.ElapsedMillis();
  EXPECT_GE(before, 90.0);
  // Only extreme (>90 ms) scheduling delay between Restart and the read
  // could break this; generous enough for CI.
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace rtr
