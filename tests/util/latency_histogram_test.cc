#include "util/latency_histogram.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rtr {
namespace {

TEST(LatencyHistogramTest, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.MeanMillis(), 0.0);
  EXPECT_EQ(h.MaxMillis(), 0.0);
  EXPECT_EQ(h.P50(), 0.0);
  EXPECT_EQ(h.P99(), 0.0);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(10.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.MeanMillis(), 10.0);
  EXPECT_NEAR(h.MaxMillis(), 10.0, 1e-6);
  // Every percentile of a single sample is that sample, up to one bucket of
  // overestimate (the documented kGrowth bound), and never beyond the max.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(h.Percentile(q), 10.0 * 0.999);
    EXPECT_LE(h.Percentile(q), 10.0 * LatencyHistogram::kGrowth);
  }
}

TEST(LatencyHistogramTest, PercentileMathOnUniformSamples) {
  LatencyHistogram h;
  for (int ms = 1; ms <= 100; ++ms) h.Record(static_cast<double>(ms));
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.MeanMillis(), 50.5);
  EXPECT_NEAR(h.MaxMillis(), 100.0, 1e-6);
  // The q-quantile of {1..100} is sample ceil(100q); the estimate may
  // overshoot by at most the bucket growth factor.
  struct { double q, truth; } cases[] = {{0.50, 50.0}, {0.95, 95.0},
                                         {0.99, 99.0}};
  for (const auto& c : cases) {
    double estimate = h.Percentile(c.q);
    EXPECT_GE(estimate, c.truth) << "q=" << c.q;
    EXPECT_LE(estimate, c.truth * LatencyHistogram::kGrowth * 1.001)
        << "q=" << c.q;
  }
  EXPECT_LE(h.P50(), h.P95());
  EXPECT_LE(h.P95(), h.P99());
}

TEST(LatencyHistogramTest, NegativeAndZeroSamplesClampToZero) {
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(-5.0);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.MaxMillis(), 0.0);
  // The percentile is capped by the largest recorded value.
  EXPECT_EQ(h.P99(), 0.0);
}

TEST(LatencyHistogramTest, ExtremeSamplesLandInEdgeBuckets) {
  LatencyHistogram h;
  h.Record(1e-9);  // below the first bucket
  h.Record(1e9);   // ~11.5 days, beyond the last bucket edge
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_NEAR(h.MaxMillis(), 1e9, 1e3);
  // P99 falls in the open-ended last bucket and is capped at the max.
  EXPECT_DOUBLE_EQ(h.P99(), h.MaxMillis());
}

TEST(LatencyHistogramTest, BucketEdgesAreGeometric) {
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketLowerEdge(0),
                   LatencyHistogram::kMinMillis);
  for (size_t i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_NEAR(LatencyHistogram::BucketLowerEdge(i + 1) /
                    LatencyHistogram::BucketLowerEdge(i),
                LatencyHistogram::kGrowth, 1e-9);
  }
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1.0 + static_cast<double>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kPerThread));
  // Mean of equally many 1s, 2s, 3s, 4s.
  EXPECT_NEAR(h.MeanMillis(), 2.5, 1e-9);
  EXPECT_NEAR(h.MaxMillis(), 4.0, 1e-6);
}

TEST(LatencyHistogramTest, SnapshotIsAConsistentCopy) {
  LatencyHistogram h;
  h.Record(1.0);
  h.Record(16.0);
  LatencyHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.sum_millis, 17.0);
  EXPECT_NEAR(snap.max_millis, 16.0, 1e-6);
  EXPECT_DOUBLE_EQ(snap.MeanMillis(), 8.5);
  // The snapshot is detached: later samples don't bleed into it.
  h.Record(100.0);
  EXPECT_EQ(snap.count, 2u);
}

TEST(LatencyHistogramTest, ZeroSamplePercentileIsZeroByContract) {
  LatencyHistogram::Snapshot empty;
  for (double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_EQ(empty.Percentile(q), 0.0);
  EXPECT_EQ(empty.MeanMillis(), 0.0);
}

TEST(LatencyHistogramTest, MergedSnapshotsAreBitEquivalentToOneHistogram) {
  // Shard samples across two histograms, merge their snapshots, and compare
  // against one histogram that recorded every sample: the merge must be
  // bit-equivalent bucket by bucket — not merely approximately equal — so
  // sharded recording (per-worker histograms, per-phase registries) never
  // changes any reported figure.
  LatencyHistogram a, b, all;
  for (int i = 1; i <= 500; ++i) {
    // Integer-valued samples: exactly representable, so the shard-then-sum
    // and sum-in-order totals are the same double bit for bit.
    double ms = static_cast<double>(i * i % 997);
    ((i % 2 == 0) ? a : b).Record(ms);
    all.Record(ms);
  }
  LatencyHistogram::Snapshot merged = a.TakeSnapshot();
  merged.Merge(b.TakeSnapshot());
  LatencyHistogram::Snapshot reference = all.TakeSnapshot();

  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.sum_millis, reference.sum_millis)
      << "sum must match exactly: both sides add the same doubles";
  EXPECT_EQ(merged.max_millis, reference.max_millis);
  ASSERT_EQ(merged.buckets.size(), reference.buckets.size());
  for (size_t i = 0; i < merged.buckets.size(); ++i) {
    EXPECT_EQ(merged.buckets[i], reference.buckets[i]) << "bucket " << i;
  }
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(merged.Percentile(q), reference.Percentile(q));
  }
}

TEST(LatencyHistogramTest, MergeFromAccumulatesIntoLiveHistogram) {
  LatencyHistogram worker, global;
  worker.Record(2.0);
  worker.Record(4.0);
  global.Record(8.0);
  global.MergeFrom(worker.TakeSnapshot());
  EXPECT_EQ(global.Count(), 3u);
  EXPECT_DOUBLE_EQ(global.SumMillis(), 14.0);
  EXPECT_NEAR(global.MaxMillis(), 8.0, 1e-6);
}

}  // namespace
}  // namespace rtr
