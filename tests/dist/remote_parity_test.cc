// Loopback-vs-remote parity: the same queries answered by an in-process
// dist::Cluster and by a cluster of three real GpServer shards reached over
// localhost TCP must produce bit-identical rankings — same nodes in the
// same order with EXPECT_DOUBLE_EQ-equal bounds, and the same record-level
// traffic accounting. The only permitted difference is the wire layer
// itself: the loopback cluster reports zero wire traffic, the remote one
// reports real frames and bytes. Suite name matches the CI TSan filter
// (Rpc|Transport|RemoteGraphProcessor).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/twosbound.h"
#include "dist/distributed_topk.h"
#include "graph/builder.h"
#include "net/gp_server.h"
#include "net/remote_gp.h"

namespace rtr {
namespace {

Graph SmallRandomishGraph() {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n");
  const NodeId n = 50;
  b.AddNodes(n, t);
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 1; j <= 3; ++j) {
      NodeId v = (u * 7 + static_cast<NodeId>(j) * 11) % n;
      if (v != u) b.AddUndirectedEdge(u, v, 1.0 + (u + j) % 5);
    }
  }
  return b.Build().value();
}

TEST(RemoteGraphProcessorParityTest, RemoteClusterMatchesLoopbackBitForBit) {
  auto graph = std::make_shared<const Graph>(SmallRandomishGraph());
  constexpr int kNumGps = 3;
  constexpr uint64_t kGeneration = 7;

  std::vector<std::unique_ptr<net::GpServer>> servers;
  std::vector<std::string> endpoints;
  for (int shard = 0; shard < kNumGps; ++shard) {
    auto server = net::GpServer::Start(graph, shard, kNumGps, kGeneration);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    endpoints.push_back("127.0.0.1:" + std::to_string((*server)->port()));
    servers.push_back(std::move(*server));
  }

  auto remote = net::ConnectRemoteCluster(graph, kGeneration, endpoints);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_TRUE((*remote)->remote());
  dist::Cluster loopback(graph, kNumGps, kGeneration);
  ASSERT_FALSE(loopback.remote());

  core::TopKParams params;
  params.k = 8;
  const std::vector<Query> queries = {{0}, {13}, {7, 31}, {49, 2, 25}};
  for (const Query& query : queries) {
    auto remote_result = dist::DistributedTopK(**remote, query, params);
    auto loopback_result = dist::DistributedTopK(loopback, query, params);
    ASSERT_TRUE(remote_result.ok()) << remote_result.status().ToString();
    ASSERT_TRUE(loopback_result.ok()) << loopback_result.status().ToString();

    // Node-for-node, bound-for-bound: the wire must be invisible to
    // ranking semantics.
    ASSERT_EQ(remote_result->topk.entries.size(),
              loopback_result->topk.entries.size());
    for (size_t i = 0; i < loopback_result->topk.entries.size(); ++i) {
      EXPECT_EQ(remote_result->topk.entries[i].node,
                loopback_result->topk.entries[i].node);
      EXPECT_DOUBLE_EQ(remote_result->topk.entries[i].lower,
                       loopback_result->topk.entries[i].lower);
      EXPECT_DOUBLE_EQ(remote_result->topk.entries[i].upper,
                       loopback_result->topk.entries[i].upper);
    }
    EXPECT_EQ(remote_result->topk.converged, loopback_result->topk.converged);
    EXPECT_EQ(remote_result->topk.active_node_ids,
              loopback_result->topk.active_node_ids);
    EXPECT_EQ(remote_result->active_set_bytes,
              loopback_result->active_set_bytes);
  }

  // Record-level accounting (the paper's simulated AP<->GP traffic) matches
  // shard-by-shard; wire-level traffic exists only on the remote side.
  for (int gp = 0; gp < kNumGps; ++gp) {
    EXPECT_EQ((*remote)->fetch_requests(gp), loopback.fetch_requests(gp));
    EXPECT_EQ((*remote)->records_served(gp), loopback.records_served(gp));
    EXPECT_EQ((*remote)->bytes_served(gp), loopback.bytes_served(gp));
  }
  dist::WireTraffic remote_wire = (*remote)->total_wire();
  dist::WireTraffic loopback_wire = loopback.total_wire();
  EXPECT_GT(remote_wire.frames_sent, 0u);
  EXPECT_GT(remote_wire.bytes_received, 0u);
  EXPECT_EQ(remote_wire.retries, 0u);
  EXPECT_EQ(loopback_wire.frames_sent, 0u);
  EXPECT_EQ(loopback_wire.bytes_received, 0u);

  for (std::unique_ptr<net::GpServer>& server : servers) server->Stop();
}

}  // namespace
}  // namespace rtr
