#include "dist/distributed_topk.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/twosbound.h"
#include "datasets/qlog.h"
#include "graph/builder.h"
#include "graph/snapshot.h"

namespace rtr {
namespace {

Graph SmallRandomishGraph() {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n");
  const NodeId n = 50;
  b.AddNodes(n, t);
  // Deterministic pseudo-random sprinkle of arcs with varied weights.
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 1; j <= 3; ++j) {
      NodeId v = (u * 7 + static_cast<NodeId>(j) * 11) % n;
      if (v != u) b.AddUndirectedEdge(u, v, 1.0 + (u + j) % 5);
    }
  }
  return b.Build().value();
}

// Non-owning shared handle for the Cluster constructor: test graphs live on
// the test's stack and outlive the clusters built over them, so an aliasing
// shared_ptr avoids a per-cluster graph copy.
std::shared_ptr<const Graph> NoCopy(const Graph& g) {
  return {std::shared_ptr<const Graph>{}, &g};
}

datasets::QLog SmallQLog() {
  datasets::QLogConfig config;
  config.num_concepts = 400;
  config.num_portal_urls = 10;
  return datasets::QLog::Generate(config).value();
}

TEST(ClusterTest, EveryNodeOwnedExactlyOnce) {
  Graph g = SmallRandomishGraph();
  for (int num_gps : {1, 2, 3, 4, 7}) {
    dist::Cluster cluster(NoCopy(g), num_gps);
    ASSERT_EQ(cluster.gps().size(), static_cast<size_t>(num_gps));
    std::vector<int> owners(g.num_nodes(), 0);
    size_t total_owned = 0;
    for (const dist::GraphProcessor& gp : cluster.gps()) {
      total_owned += gp.num_owned_nodes();
      for (NodeId v : gp.owned_nodes()) {
        ASSERT_LT(v, g.num_nodes());
        ++owners[v];
        EXPECT_TRUE(gp.Owns(v));
        EXPECT_EQ(cluster.OwnerOf(v), gp.id());
      }
    }
    EXPECT_EQ(total_owned, g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(owners[v], 1) << "node " << v << " with " << num_gps
                              << " GPs";
    }
  }
}

TEST(ClusterTest, StripingIsBalanced) {
  Graph g = SmallRandomishGraph();
  dist::Cluster cluster(NoCopy(g), 4);
  size_t lo = g.num_nodes(), hi = 0;
  for (const dist::GraphProcessor& gp : cluster.gps()) {
    lo = std::min(lo, gp.num_owned_nodes());
    hi = std::max(hi, gp.num_owned_nodes());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ClusterTest, StoredBytesSumToTotal) {
  Graph g = SmallRandomishGraph();
  for (int num_gps : {1, 3, 5}) {
    dist::Cluster cluster(NoCopy(g), num_gps);
    size_t sum = 0;
    for (const dist::GraphProcessor& gp : cluster.gps()) {
      EXPECT_GT(gp.stored_bytes(), 0u);
      sum += gp.stored_bytes();
    }
    EXPECT_EQ(sum, cluster.total_stored_bytes());
  }
}

TEST(GraphProcessorTest, FetchRejectsForeignNode) {
  Graph g = SmallRandomishGraph();
  dist::Cluster cluster(NoCopy(g), 2);
  std::vector<dist::NodeRecord> records;
  // Node 1 belongs to GP 1, not GP 0.
  Status status = cluster.gps()[0].Fetch({1}, &records);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(DistributedTopKTest, SingleGpDegeneratesToLocal) {
  Graph g = SmallRandomishGraph();
  dist::Cluster cluster(NoCopy(g), 1);
  core::TopKParams params;
  params.k = 5;
  params.epsilon = 0.001;
  core::TopKResult local = core::TopKRoundTripRank(g, {0}, params).value();
  dist::DistributedTopKResult distributed =
      dist::DistributedTopK(cluster, {0}, params).value();
  ASSERT_EQ(distributed.topk.entries.size(), local.entries.size());
  for (size_t i = 0; i < local.entries.size(); ++i) {
    EXPECT_EQ(distributed.topk.entries[i].node, local.entries[i].node);
    EXPECT_DOUBLE_EQ(distributed.topk.entries[i].lower,
                     local.entries[i].lower);
  }
  EXPECT_EQ(distributed.active_nodes, local.active_nodes);
  EXPECT_EQ(distributed.active_set_bytes, local.active_set_bytes);
}

TEST(DistributedTopKTest, MatchesLocalRankingAcrossGpCounts) {
  datasets::QLog qlog = SmallQLog();
  const Graph& g = qlog.graph();
  core::TopKParams params;
  params.k = 8;
  params.epsilon = 0.005;
  NodeId query = 0;
  while (query < g.num_nodes() && g.out_degree(query) == 0) ++query;
  ASSERT_LT(query, g.num_nodes());
  core::TopKResult local = core::TopKRoundTripRank(g, {query}, params).value();
  for (int num_gps : {1, 2, 3, 4}) {
    dist::Cluster cluster(NoCopy(g), num_gps);
    dist::DistributedTopKResult distributed =
        dist::DistributedTopK(cluster, {query}, params).value();
    ASSERT_EQ(distributed.topk.entries.size(), local.entries.size())
        << num_gps << " GPs";
    for (size_t i = 0; i < local.entries.size(); ++i) {
      EXPECT_EQ(distributed.topk.entries[i].node, local.entries[i].node)
          << "rank " << i << " with " << num_gps << " GPs";
    }
    // The replay serves exactly the active set, and byte accounting agrees
    // with the local run's formula regardless of the striping.
    EXPECT_EQ(distributed.active_nodes, local.active_nodes);
    EXPECT_EQ(distributed.active_set_bytes, local.active_set_bytes);
    EXPECT_GE(distributed.requests_sent, 1u);
    // Fig. 12-13 economics: the active set is a strict subset of the
    // cluster-wide storage.
    EXPECT_LT(distributed.active_set_bytes, cluster.total_stored_bytes());
  }
}

TEST(DistributedTopKTest, RequestBatchingCapIsRespected) {
  datasets::QLog qlog = SmallQLog();
  const Graph& g = qlog.graph();
  core::TopKParams params;
  params.k = 8;
  params.epsilon = 0.005;
  NodeId query = 0;
  while (query < g.num_nodes() && g.out_degree(query) == 0) ++query;
  ASSERT_LT(query, g.num_nodes());
  dist::Cluster cluster(NoCopy(g), 3);
  dist::DistributedTopKResult result =
      dist::DistributedTopK(cluster, {query}, params).value();
  // Enough requests to carry every record under the per-request cap.
  size_t min_requests =
      (result.active_nodes + dist::kMaxRecordsPerRequest - 1) /
      dist::kMaxRecordsPerRequest;
  EXPECT_GE(result.requests_sent, min_requests);
  // And no more than one partially-filled request per GP.
  EXPECT_LE(result.requests_sent, min_requests + 3);
}

TEST(DistributedTopKTest, RejectsNaiveScheme) {
  Graph g = SmallRandomishGraph();
  dist::Cluster cluster(NoCopy(g), 2);
  core::TopKParams params;
  params.scheme = core::TopKScheme::kNaive;
  StatusOr<dist::DistributedTopKResult> result =
      dist::DistributedTopK(cluster, {0}, params);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistributedTopKTest, PropagatesInvalidQuery) {
  Graph g = SmallRandomishGraph();
  dist::Cluster cluster(NoCopy(g), 2);
  core::TopKParams params;
  StatusOr<dist::DistributedTopKResult> result =
      dist::DistributedTopK(cluster, {}, params);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// Shard bring-up from a snapshot file: the striped storage must match a
// cluster built over the in-memory graph, and queries must agree.
TEST(ClusterTest, FromGraphFileBringsUpShards) {
  Graph g = SmallRandomishGraph();
  const std::string path =
      testing::TempDir() + "/rtr_cluster_test.rtrsnap";
  ASSERT_TRUE(SaveGraphSnapshotToFile(g, path).ok());

  StatusOr<std::unique_ptr<dist::Cluster>> cluster =
      dist::Cluster::FromGraphFile(path, 3);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  dist::Cluster reference(NoCopy(g), 3);
  EXPECT_EQ((*cluster)->num_gps(), 3);
  EXPECT_EQ((*cluster)->total_stored_bytes(),
            reference.total_stored_bytes());

  core::TopKParams params;
  params.k = 5;
  params.epsilon = 0.001;
  StatusOr<dist::DistributedTopKResult> result =
      dist::DistributedTopK(**cluster, {0}, params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  core::TopKResult local = core::TopKRoundTripRank(g, {0}, params).value();
  ASSERT_EQ(result->topk.entries.size(), local.entries.size());
  for (size_t i = 0; i < local.entries.size(); ++i) {
    EXPECT_EQ(result->topk.entries[i].node, local.entries[i].node);
  }
}

TEST(ClusterTest, FromGraphFileRejectsBadInput) {
  EXPECT_FALSE(dist::Cluster::FromGraphFile("/nonexistent/g", 2).ok());
}

}  // namespace
}  // namespace rtr
