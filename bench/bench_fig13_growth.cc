// Reproduces Fig. 13: rate of growth of snapshot size vs active-set size vs
// query time, each normalized by its value on the first snapshot. The
// paper's claim (Sect. V-B1): the active set — and hence query time — grows
// much slower than the graph, O(|V|^{2(a-1)}) vs O(|V|^a).
//
// Part two extends the experiment to LIVE growth (DESIGN.md §8): the same
// query stream is served twice from a serve::QueryService — once over a
// static base generation, once while a writer thread ingests deltas through
// GraphStore::Apply mid-stream — and the tail latencies are compared. The
// claim under test: RCU generation swaps keep ingestion off the query path,
// so p99 during ingestion stays within a small factor of the static p99.
//
// Environment knobs (beyond bench_common.h's):
//   RTR_INGEST_QUERIES — stream length per serving phase   (default 200)
//   RTR_INGEST_WORKERS — QueryService worker threads       (default 4)
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "dist/distributed_topk.h"
#include "eval/experiment.h"
#include "graph/builder.h"
#include "graph/delta.h"
#include "graph/store.h"
#include "net/gp_server.h"
#include "net/remote_gp.h"
#include "serve/query_service.h"
#include "snapshot_experiment.h"

namespace {

using rtr::Graph;
using rtr::GraphBuilder;
using rtr::GraphDelta;
using rtr::GraphStore;
using rtr::NodeId;
using rtr::bench::SnapshotPoint;
using rtr::eval::TablePrinter;

void PrintGrowth(const char* title,
                 const std::vector<SnapshotPoint>& points) {
  std::printf("\n%s (all series normalized to the first snapshot)\n", title);
  TablePrinter table(
      {"Timestamp", "snapshot", "active set", "query time"});
  const SnapshotPoint& base = points.front();
  for (const SnapshotPoint& point : points) {
    table.AddRow(
        {point.label,
         TablePrinter::FormatDouble(
             static_cast<double>(point.snapshot_bytes) / base.snapshot_bytes,
             2),
         TablePrinter::FormatDouble(
             point.active_set_mb.mean / base.active_set_mb.mean, 2),
         TablePrinter::FormatDouble(point.query_ms.mean / base.query_ms.mean,
                                    2)});
  }
  table.Print();
  double snapshot_growth = static_cast<double>(points.back().snapshot_bytes) /
                           base.snapshot_bytes;
  double active_growth =
      points.back().active_set_mb.mean / base.active_set_mb.mean;
  std::printf("  total growth: snapshot x%.1f, active set x%.1f -> active "
              "set grows %s\n",
              snapshot_growth, active_growth,
              active_growth < snapshot_growth ? "slower (as the paper finds)"
                                              : "NOT slower (unexpected)");
}

// --------------------------------------------------------------------------
// Live-ingestion experiment.
// --------------------------------------------------------------------------

// The id-stable prefix of `full` induced by its first `n` nodes: same node
// ids and types, arcs restricted to both endpoints < n. Year snapshots
// (Subgraph) renumber nodes, so they cannot feed DiffGraphs; prefix graphs
// model the same cumulative growth with arrival order = node id.
Graph PrefixGraph(const Graph& full, size_t n) {
  GraphBuilder b;
  // Type 0 ("untyped") is pre-registered by the builder.
  for (size_t t = 1; t < full.type_names().size(); ++t) {
    b.AddNodeType(full.type_names()[t]);
  }
  for (NodeId v = 0; v < n; ++v) b.AddNode(full.node_type(v));
  for (NodeId v = 0; v < n; ++v) {
    std::span<const NodeId> targets = full.out_targets(v);
    std::span<const double> weights = full.out_arc_weights(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (targets[i] < n) b.AddDirectedEdge(v, targets[i], weights[i]);
    }
  }
  return b.Build().value();
}

struct PhaseResult {
  const char* phase;
  rtr::serve::ServiceStats stats;
  uint64_t swaps = 0;
};

// Serves `stream` through a QueryService over `store` with `num_workers`
// workers and the result cache on. When deltas are supplied, the stream is
// submitted in D+1 chunks with delta i applied (on this thread) between
// chunks i and i+1: the pool drains chunk i concurrently with the
// generation build, and every query submitted afterwards is served on the
// newly published generation.
PhaseResult RunServingPhase(const char* phase,
                            std::shared_ptr<GraphStore> store,
                            const std::vector<GraphDelta>& deltas,
                            const std::vector<NodeId>& stream,
                            const rtr::core::TopKParams& params,
                            int num_workers) {
  rtr::serve::ServiceOptions options;
  options.num_workers = num_workers;
  options.queue_capacity = stream.size();
  options.enable_cache = true;
  options.cache_capacity = 4096;
  rtr::serve::QueryService service(store, options);
  CHECK(service.Start().ok());

  const size_t num_chunks = deltas.size() + 1;
  const size_t chunk = (stream.size() + num_chunks - 1) / num_chunks;
  size_t submitted = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t end = std::min(stream.size(), (c + 1) * chunk);
    for (; submitted < end; ++submitted) {
      CHECK(service.SubmitAsync({{stream[submitted]}, params}, nullptr).ok());
    }
    if (c < deltas.size()) {
      rtr::StatusOr<uint64_t> gen = store->Apply(deltas[c]);
      CHECK(gen.ok()) << gen.status().ToString();
    }
  }
  service.Shutdown();
  return PhaseResult{phase, service.stats(), store->swap_count()};
}

void RunIngestionExperiment(int num_queries, int num_workers) {
  std::printf("\n(c) query p99 during ingestion — static generation vs "
              "deltas applied mid-stream\n");
  rtr::datasets::BibNet bibnet = rtr::bench::MakeFullBibNet();
  const Graph& full = bibnet.graph();

  // Five cumulative prefixes, 60%% -> 100%% of the node range; the last
  // four arrive as deltas during the ingestion phase.
  const double fractions[] = {0.6, 0.7, 0.8, 0.9, 1.0};
  std::vector<Graph> prefixes;
  for (double f : fractions) {
    prefixes.push_back(
        PrefixGraph(full, static_cast<size_t>(f * full.num_nodes())));
  }
  std::vector<GraphDelta> deltas;
  for (size_t i = 0; i + 1 < prefixes.size(); ++i) {
    rtr::StatusOr<GraphDelta> delta = DiffGraphs(prefixes[i], prefixes[i + 1]);
    CHECK(delta.ok()) << delta.status().ToString();
    delta->base_generation = i;
    deltas.push_back(std::move(delta).value());
  }
  const Graph& base = prefixes.front();
  std::printf("BibNet prefix growth: %zu -> %zu nodes over %zu deltas "
              "(%d queries per phase, %d workers)\n",
              base.num_nodes(), prefixes.back().num_nodes(), deltas.size(),
              num_queries, num_workers);

  // One fixed stream for both phases, repeated draws from a pool half the
  // stream's size (the realistic hit/miss skew of bench_serve_throughput).
  rtr::Rng rng(1700);
  std::vector<NodeId> pool;
  for (int i = 0; i < std::max(1, num_queries / 2); ++i) {
    NodeId q = rtr::bench::SampleQueryNode(base, rng);
    CHECK_NE(q, rtr::kInvalidNode) << "prefix graph has no query nodes";
    pool.push_back(q);
  }
  std::vector<NodeId> stream;
  for (int i = 0; i < num_queries; ++i) {
    stream.push_back(pool[static_cast<size_t>(rng.NextUint64(pool.size()))]);
  }
  rtr::core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01;

  PhaseResult static_phase = RunServingPhase(
      "static", std::make_shared<GraphStore>(PrefixGraph(full, base.num_nodes())),
      {}, stream, params, num_workers);
  PhaseResult ingest_phase = RunServingPhase(
      "ingestion",
      std::make_shared<GraphStore>(PrefixGraph(full, base.num_nodes())),
      deltas, stream, params, num_workers);

  TablePrinter table({"phase", "QPS", "p50 ms", "p95 ms", "p99 ms",
                      "generations", "cache invalidations"});
  for (const PhaseResult& r : {static_phase, ingest_phase}) {
    table.AddRow({r.phase, TablePrinter::FormatDouble(r.stats.qps, 1),
                  TablePrinter::FormatDouble(r.stats.p50_millis, 2),
                  TablePrinter::FormatDouble(r.stats.p95_millis, 2),
                  TablePrinter::FormatDouble(r.stats.p99_millis, 2),
                  std::to_string(r.stats.generation),
                  std::to_string(r.stats.cache_invalidations)});
  }
  table.Print();
  const double ratio =
      static_phase.stats.p99_millis > 0
          ? ingest_phase.stats.p99_millis / static_phase.stats.p99_millis
          : 0.0;
  std::printf("  ingestion p99 / static p99 = %.2fx (%llu generation swaps "
              "landed mid-stream)\n",
              ratio,
              static_cast<unsigned long long>(ingest_phase.swaps));
}

// --------------------------------------------------------------------------
// AP<->GP traffic: simulated record bytes vs actual wire bytes.
// --------------------------------------------------------------------------

// The paper's Sect. V-B cost model counts record bytes shipped from GPs to
// the AP. The networked tier ships those same records in checksummed frames
// over TCP, so the wire adds a measurable framing overhead. This experiment
// runs one query stream twice — over the in-process loopback cluster and
// over real gp-serve shards on localhost — and reports both ledgers side by
// side. The record-level columns must match exactly (the wire is invisible
// to the cost model); the wire column shows what the network really moved.
void RunWireTrafficExperiment(int num_queries, int num_gps) {
  std::printf("\n(d) AP<->GP traffic — simulated record bytes vs actual "
              "wire bytes (%d queries, %d GPs)\n",
              num_queries, num_gps);
  rtr::datasets::BibNet bibnet = rtr::bench::MakeFullBibNet();
  auto graph = std::make_shared<const Graph>(bibnet.graph());

  std::vector<std::unique_ptr<rtr::net::GpServer>> servers;
  std::vector<std::string> endpoints;
  for (int shard = 0; shard < num_gps; ++shard) {
    auto server = rtr::net::GpServer::Start(graph, shard, num_gps, 0);
    CHECK(server.ok()) << server.status().ToString();
    endpoints.push_back("127.0.0.1:" +
                        std::to_string((*server)->port()));
    servers.push_back(std::move(*server));
  }
  auto remote = rtr::net::ConnectRemoteCluster(graph, 0, endpoints);
  CHECK(remote.ok()) << remote.status().ToString();
  rtr::dist::Cluster loopback(graph, num_gps);

  rtr::Rng rng(1300);
  std::vector<NodeId> stream;
  for (int i = 0; i < num_queries; ++i) {
    stream.push_back(rtr::bench::SampleQueryNode(*graph, rng));
  }
  rtr::core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01;

  rtr::core::QueryWorkspace workspace;
  double loopback_ms = 0.0;
  double remote_ms = 0.0;
  for (NodeId q : stream) {
    rtr::WallTimer timer;
    CHECK(rtr::dist::DistributedTopK(loopback, {q}, params, &workspace).ok());
    loopback_ms += timer.ElapsedMillis();
    timer = rtr::WallTimer();
    CHECK(rtr::dist::DistributedTopK(**remote, {q}, params, &workspace).ok());
    remote_ms += timer.ElapsedMillis();
  }

  TablePrinter table({"GP", "fetches", "records", "simulated B",
                      "wire B (rx)", "wire/simulated", "frames", "retries"});
  uint64_t simulated_total = 0;
  for (int gp = 0; gp < num_gps; ++gp) {
    CHECK_EQ((*remote)->records_served(gp), loopback.records_served(gp));
    CHECK_EQ((*remote)->bytes_served(gp), loopback.bytes_served(gp));
    const uint64_t simulated = (*remote)->bytes_served(gp);
    simulated_total += simulated;
    rtr::dist::WireTraffic wire = (*remote)->wire(gp);
    table.AddRow(
        {std::to_string(gp), std::to_string((*remote)->fetch_requests(gp)),
         std::to_string((*remote)->records_served(gp)),
         std::to_string(simulated), std::to_string(wire.bytes_received),
         TablePrinter::FormatDouble(
             simulated > 0
                 ? static_cast<double>(wire.bytes_received) / simulated
                 : 0.0,
             3),
         std::to_string(wire.frames_received),
         std::to_string(wire.retries)});
  }
  table.Print();
  rtr::dist::WireTraffic wire = (*remote)->total_wire();
  std::printf("  totals: simulated %llu B, wire rx %llu B (x%.3f of the "
              "simulated ledger), wire tx %llu B\n",
              static_cast<unsigned long long>(simulated_total),
              static_cast<unsigned long long>(wire.bytes_received),
              simulated_total > 0
                  ? static_cast<double>(wire.bytes_received) / simulated_total
                  : 0.0,
              static_cast<unsigned long long>(wire.bytes_sent));
  std::printf("  latency: loopback %.2f ms/query, localhost TCP %.2f "
              "ms/query (x%.2f)\n",
              loopback_ms / num_queries, remote_ms / num_queries,
              loopback_ms > 0 ? remote_ms / loopback_ms : 0.0);
  for (std::unique_ptr<rtr::net::GpServer>& server : servers) server->Stop();
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Fig. 13 — rate of growth: snapshot vs active set vs query time",
      "Derived from the Fig. 12 experiment; K = 10, eps = 0.01.");
  const int num_queries = rtr::bench::NumEfficiencyQueries();
  std::printf("%d queries per snapshot\n", num_queries);

  std::vector<SnapshotPoint> bibnet =
      rtr::bench::RunBibNetSnapshots(num_queries);
  PrintGrowth("(a) BibNet snapshots", bibnet);
  std::vector<SnapshotPoint> qlog = rtr::bench::RunQLogSnapshots(num_queries);
  PrintGrowth("(b) QLog snapshots", qlog);

  RunIngestionExperiment(rtr::bench::EnvInt("RTR_INGEST_QUERIES", 200),
                         rtr::bench::EnvInt("RTR_INGEST_WORKERS", 4));
  RunWireTrafficExperiment(rtr::bench::EnvInt("RTR_NET_QUERIES", 40),
                           rtr::bench::EnvInt("RTR_NET_GPS", 3));
  return 0;
}
