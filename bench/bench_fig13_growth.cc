// Reproduces Fig. 13: rate of growth of snapshot size vs active-set size vs
// query time, each normalized by its value on the first snapshot. The
// paper's claim (Sect. V-B1): the active set — and hence query time — grows
// much slower than the graph, O(|V|^{2(a-1)}) vs O(|V|^a).
#include <cstdio>
#include <vector>

#include "eval/experiment.h"
#include "snapshot_experiment.h"

namespace {

using rtr::bench::SnapshotPoint;
using rtr::eval::TablePrinter;

void PrintGrowth(const char* title,
                 const std::vector<SnapshotPoint>& points) {
  std::printf("\n%s (all series normalized to the first snapshot)\n", title);
  TablePrinter table(
      {"Timestamp", "snapshot", "active set", "query time"});
  const SnapshotPoint& base = points.front();
  for (const SnapshotPoint& point : points) {
    table.AddRow(
        {point.label,
         TablePrinter::FormatDouble(
             static_cast<double>(point.snapshot_bytes) / base.snapshot_bytes,
             2),
         TablePrinter::FormatDouble(
             point.active_set_mb.mean / base.active_set_mb.mean, 2),
         TablePrinter::FormatDouble(point.query_ms.mean / base.query_ms.mean,
                                    2)});
  }
  table.Print();
  double snapshot_growth = static_cast<double>(points.back().snapshot_bytes) /
                           base.snapshot_bytes;
  double active_growth =
      points.back().active_set_mb.mean / base.active_set_mb.mean;
  std::printf("  total growth: snapshot x%.1f, active set x%.1f -> active "
              "set grows %s\n",
              snapshot_growth, active_growth,
              active_growth < snapshot_growth ? "slower (as the paper finds)"
                                              : "NOT slower (unexpected)");
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Fig. 13 — rate of growth: snapshot vs active set vs query time",
      "Derived from the Fig. 12 experiment; K = 10, eps = 0.01.");
  const int num_queries = rtr::bench::NumEfficiencyQueries();
  std::printf("%d queries per snapshot\n", num_queries);

  std::vector<SnapshotPoint> bibnet =
      rtr::bench::RunBibNetSnapshots(num_queries);
  PrintGrowth("(a) BibNet snapshots", bibnet);
  std::vector<SnapshotPoint> qlog = rtr::bench::RunQLogSnapshots(num_queries);
  PrintGrowth("(b) QLog snapshots", qlog);
  return 0;
}
