// Kernel microbenchmarks (google-benchmark): the building blocks behind the
// paper's query times — CSR construction, power iteration, BCA pushes,
// Stage-II refinement sweeps, and end-to-end 2SBound.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/bca.h"
#include "core/two_stage.h"
#include "core/twosbound.h"
#include "graph/builder.h"
#include "ranking/pagerank.h"
#include "util/random.h"

namespace {

using rtr::Graph;
using rtr::GraphBuilder;
using rtr::NodeId;

Graph MakeGraph(size_t n, size_t extra_edges, uint64_t seed) {
  rtr::Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddUndirectedEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                        0.5 + rng.NextDouble());
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u != v) b.AddUndirectedEdge(u, v, 0.5 + rng.NextDouble());
  }
  return b.Build().value();
}

const Graph& SharedGraph() {
  // Snapshot-cached under RTR_SNAPSHOT_DIR so repeated bench runs skip the
  // builder (see bench_common.h).
  static const Graph* graph = new Graph(rtr::bench::LoadOrBuildGraph(
      "bench_micro_n20000_e80000_s7", [] { return MakeGraph(20000, 80000, 7); }));
  return *graph;
}

void BM_GraphBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Graph g = MakeGraph(n, n * 4, 11);
    benchmark::DoNotOptimize(g.num_arcs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * 10));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000);

void BM_FRankPowerIteration(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::ranking::WalkParams params;
  params.tolerance = 1e-10;
  for (auto _ : state) {
    std::vector<double> f = rtr::ranking::FRank(g, {0}, params);
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_FRankPowerIteration);

void BM_TRankPowerIteration(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::ranking::WalkParams params;
  params.tolerance = 1e-10;
  for (auto _ : state) {
    std::vector<double> t = rtr::ranking::TRank(g, {0}, params);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_TRankPowerIteration);

void BM_BcaProcessBest(benchmark::State& state) {
  const Graph& g = SharedGraph();
  for (auto _ : state) {
    rtr::core::Bca bca(g, {0}, 0.25);
    for (int round = 0; round < 20; ++round) {
      if (bca.ProcessBest(100) == 0) break;
    }
    benchmark::DoNotOptimize(bca.total_residual());
  }
}
BENCHMARK(BM_BcaProcessBest);

void BM_FBounderExpandRefine(benchmark::State& state) {
  const Graph& g = SharedGraph();
  const bool stage2 = state.range(0) != 0;
  for (auto _ : state) {
    rtr::core::FBounderOptions options;
    options.stage2 = stage2;
    rtr::core::FRankBounder bounder(g, {0}, options);
    for (int round = 0; round < 10; ++round) {
      if (!bounder.ExpandAndRefine()) break;
    }
    benchmark::DoNotOptimize(bounder.UnseenUpper());
  }
}
BENCHMARK(BM_FBounderExpandRefine)->Arg(0)->Arg(1);

void BM_TBounderExpandRefine(benchmark::State& state) {
  const Graph& g = SharedGraph();
  for (auto _ : state) {
    rtr::core::TBounderOptions options;
    rtr::core::TRankBounder bounder(g, {0}, options);
    for (int round = 0; round < 10; ++round) {
      if (!bounder.ExpandAndRefine()) break;
    }
    benchmark::DoNotOptimize(bounder.UnseenUpper());
  }
}
BENCHMARK(BM_TBounderExpandRefine);

void BM_TopK2SBound(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01 * static_cast<double>(state.range(0));
  NodeId q = 0;
  for (auto _ : state) {
    auto result = rtr::core::TopKRoundTripRank(g, {q}, params);
    benchmark::DoNotOptimize(result.value().entries.size());
    q = (q + 37) % static_cast<NodeId>(g.num_nodes());
  }
}
BENCHMARK(BM_TopK2SBound)->Arg(1)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
