// Kernel microbenchmarks (google-benchmark): the building blocks behind the
// paper's query times — CSR construction, power iteration, BCA pushes,
// Stage-II refinement sweeps, and end-to-end 2SBound, plus the
// workspace-arena variants of the online path (DESIGN.md §7).
//
// The binary doubles as the allocation-regression gate: alloc_counter.h
// interposes global operator new, and main() exits non-zero if a
// steady-state 2SBound query on a warm QueryWorkspace performs any heap
// allocation (the bench-smoke CI job runs this at 1 and 4 threads).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "alloc_counter.h"
#include "bench_common.h"
#include "core/bca.h"
#include "core/two_stage.h"
#include "core/twosbound.h"
#include "core/workspace.h"
#include "obs/trace.h"
#include "graph/builder.h"
#include "graph/snapshot.h"
#include "ranking/pagerank.h"
#include "util/dense_kernels.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace {

using rtr::Graph;
using rtr::GraphBuilder;
using rtr::NodeId;

Graph MakeGraph(size_t n, size_t extra_edges, uint64_t seed) {
  rtr::Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddUndirectedEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                        0.5 + rng.NextDouble());
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u != v) b.AddUndirectedEdge(u, v, 0.5 + rng.NextDouble());
  }
  return b.Build().value();
}

const Graph& SharedGraph() {
  // Snapshot-cached under RTR_SNAPSHOT_DIR so repeated bench runs skip the
  // builder (see bench_common.h).
  static const Graph* graph = new Graph(rtr::bench::LoadOrBuildGraph(
      "bench_micro_n20000_e80000_s7", [] { return MakeGraph(20000, 80000, 7); }));
  return *graph;
}

void BM_GraphBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Graph g = MakeGraph(n, n * 4, 11);
    benchmark::DoNotOptimize(g.num_arcs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * 10));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000);

void BM_FRankPowerIteration(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::ranking::WalkParams params;
  params.tolerance = 1e-10;
  for (auto _ : state) {
    std::vector<double> f = rtr::ranking::FRank(g, {0}, params);
    benchmark::DoNotOptimize(f.data());
  }
  state.counters["threads"] = rtr::util::NumThreads();
}
BENCHMARK(BM_FRankPowerIteration);

void BM_TRankPowerIteration(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::ranking::WalkParams params;
  params.tolerance = 1e-10;
  for (auto _ : state) {
    std::vector<double> t = rtr::ranking::TRank(g, {0}, params);
    benchmark::DoNotOptimize(t.data());
  }
  state.counters["threads"] = rtr::util::NumThreads();
}
BENCHMARK(BM_TRankPowerIteration);

// The gather-multiply-accumulate kernel itself, over the shared graph's
// whole in-column per iteration. Arg 0: 0 = portable forced, 1 = the
// host's best ISA (AVX2 when available). Arg 1: 0 = exact f64 probs,
// 1 = f32 probs widened in-register.
void BM_GatherDot(benchmark::State& state) {
  Graph g = SharedGraph();  // copy: the f32 column is bench-local
  g.PopulateF32Probs();
  const bool want_simd = state.range(0) != 0;
  const bool f32 = state.range(1) != 0;
  const bool saved = rtr::util::SimdEnabled();
  rtr::util::SetSimdEnabled(want_simd);
  std::vector<double> x(g.num_nodes(), 1.0);
  const uint32_t* idx = g.in_sources().data();
  const size_t n = g.in_sources().size();
  for (auto _ : state) {
    double sum = f32 ? rtr::util::GatherDotF32(idx, g.in_probs_f32().data(),
                                               n, x.data())
                     : rtr::util::GatherDotF64(idx, g.in_probs().data(), n,
                                               x.data());
    benchmark::DoNotOptimize(sum);
  }
  rtr::util::SetSimdEnabled(saved);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(std::string(want_simd ? rtr::util::DenseKernelIsa()
                                       : "portable") +
                 (f32 ? "/f32" : "/f64"));
}
BENCHMARK(BM_GatherDot)
    ->ArgsProduct({{0, 1}, {0, 1}});

// End-to-end power iteration across the kernel variants. Arg 0 toggles
// SIMD, arg 1 the f32 probability column (both restored afterwards).
void BM_FRankKernels(benchmark::State& state) {
  static const Graph* g32 = [] {
    Graph* g = new Graph(SharedGraph());
    g->PopulateF32Probs();
    return g;
  }();
  const bool saved_simd = rtr::util::SimdEnabled();
  const bool saved_f32 = rtr::util::F32KernelsEnabled();
  rtr::util::SetSimdEnabled(state.range(0) != 0);
  rtr::util::SetF32Kernels(state.range(1) != 0);
  rtr::ranking::WalkParams params;
  params.tolerance = 1e-10;
  for (auto _ : state) {
    std::vector<double> f = rtr::ranking::FRank(*g32, {0}, params);
    benchmark::DoNotOptimize(f.data());
  }
  rtr::util::SetSimdEnabled(saved_simd);
  rtr::util::SetF32Kernels(saved_f32);
  state.counters["threads"] = rtr::util::NumThreads();
}
BENCHMARK(BM_FRankKernels)
    ->ArgsProduct({{0, 1}, {0, 1}});

void BM_BcaProcessBest(benchmark::State& state) {
  const Graph& g = SharedGraph();
  for (auto _ : state) {
    rtr::core::Bca bca(g, {0}, 0.25);
    for (int round = 0; round < 20; ++round) {
      if (bca.ProcessBest(100) == 0) break;
    }
    benchmark::DoNotOptimize(bca.total_residual());
  }
}
BENCHMARK(BM_BcaProcessBest);

// Same BCA work through a reused workspace: isolates the arena's win over
// per-query construction of the dense arrays and heaps.
void BM_BcaProcessBestWorkspace(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::core::QueryWorkspace ws;
  for (auto _ : state) {
    ws.BeginQuery(g.num_nodes());
    rtr::core::Bca bca(g, {0}, 0.25, &ws);
    for (int round = 0; round < 20; ++round) {
      if (bca.ProcessBest(100) == 0) break;
    }
    benchmark::DoNotOptimize(bca.total_residual());
  }
}
BENCHMARK(BM_BcaProcessBestWorkspace);

void BM_FBounderExpandRefine(benchmark::State& state) {
  const Graph& g = SharedGraph();
  const bool stage2 = state.range(0) != 0;
  for (auto _ : state) {
    rtr::core::FBounderOptions options;
    options.stage2 = stage2;
    rtr::core::FRankBounder bounder(g, {0}, options);
    for (int round = 0; round < 10; ++round) {
      if (!bounder.ExpandAndRefine()) break;
    }
    benchmark::DoNotOptimize(bounder.UnseenUpper());
  }
}
BENCHMARK(BM_FBounderExpandRefine)->Arg(0)->Arg(1);

void BM_TBounderExpandRefine(benchmark::State& state) {
  const Graph& g = SharedGraph();
  for (auto _ : state) {
    rtr::core::TBounderOptions options;
    rtr::core::TRankBounder bounder(g, {0}, options);
    for (int round = 0; round < 10; ++round) {
      if (!bounder.ExpandAndRefine()) break;
    }
    benchmark::DoNotOptimize(bounder.UnseenUpper());
  }
}
BENCHMARK(BM_TBounderExpandRefine);

void BM_TopK2SBound(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01 * static_cast<double>(state.range(0));
  NodeId q = 0;
  for (auto _ : state) {
    auto result = rtr::core::TopKRoundTripRank(g, {q}, params);
    benchmark::DoNotOptimize(result.value().entries.size());
    q = (q + 37) % static_cast<NodeId>(g.num_nodes());
  }
}
BENCHMARK(BM_TopK2SBound)->Arg(1)->Arg(3);

// The serving hot path: reused workspace AND result buffers. Reports
// allocations per query — after warm-up this must be (and on fixed query
// streams is asserted by main() to be) zero.
void BM_TopK2SBoundWorkspace(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01 * static_cast<double>(state.range(0));
  rtr::core::QueryWorkspace ws;
  rtr::core::TopKResult result;
  rtr::Query query(1);  // reused: the engine never copies the query
  // Warm the arena and the result capacity on the query rotation.
  query[0] = 0;
  for (int warm = 0; warm < 8; ++warm) {
    (void)rtr::core::TopKRoundTripRank(g, query, params, ws, &result);
    query[0] = (query[0] + 37) % static_cast<NodeId>(g.num_nodes());
  }
  const uint64_t allocs_before = rtr::bench::AllocCount();
  uint64_t iterations = 0;
  query[0] = 0;
  for (auto _ : state) {
    rtr::Status status =
        rtr::core::TopKRoundTripRank(g, query, params, ws, &result);
    benchmark::DoNotOptimize(status.ok());
    benchmark::DoNotOptimize(result.entries.size());
    query[0] = (query[0] + 37) % static_cast<NodeId>(g.num_nodes());
    ++iterations;
  }
  state.counters["allocs_per_query"] =
      iterations == 0
          ? 0.0
          : static_cast<double>(rtr::bench::AllocCount() - allocs_before) /
                static_cast<double>(iterations);
}
BENCHMARK(BM_TopK2SBoundWorkspace)->Arg(1)->Arg(3);

// The serving hot path with a TraceRecorder attached (DESIGN.md §9): the
// engine reads the clock at its geometric check boundaries instead of per
// round, so the traced run should stay within a few percent of the
// untraced one — BENCH_topk.json records both. With the recorder detached
// the engine's only extra work is one pointer test per boundary, which is
// below benchmark noise.
void BM_TopK2SBoundWorkspaceTraced(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01 * static_cast<double>(state.range(0));
  rtr::core::QueryWorkspace ws;
  rtr::obs::TraceRecorder trace;
  ws.trace = &trace;
  rtr::core::TopKResult result;
  rtr::Query query(1);
  query[0] = 0;
  int64_t query_id = 0;
  for (auto _ : state) {
    trace.BeginQuery(query_id++);
    rtr::Status status =
        rtr::core::TopKRoundTripRank(g, query, params, ws, &result);
    benchmark::DoNotOptimize(status.ok());
    benchmark::DoNotOptimize(trace.spans().size());
    query[0] = (query[0] + 37) % static_cast<NodeId>(g.num_nodes());
  }
}
BENCHMARK(BM_TopK2SBoundWorkspaceTraced)->Arg(1)->Arg(3);

// The exact baseline (kNaive = full FRank/TRank power iteration): the
// dense path the parallel kernels accelerate. The bench-smoke CI job runs
// this at RTR_NUM_THREADS=1 and 4 and reports the speedup.
void BM_TopKNaiveExact(benchmark::State& state) {
  const Graph& g = SharedGraph();
  rtr::core::TopKParams params;
  params.k = 10;
  params.scheme = rtr::core::TopKScheme::kNaive;
  rtr::core::QueryWorkspace ws;
  rtr::core::TopKResult result;
  NodeId q = 0;
  for (auto _ : state) {
    rtr::Status status =
        rtr::core::TopKRoundTripRank(g, {q}, params, ws, &result);
    benchmark::DoNotOptimize(status.ok());
    q = (q + 37) % static_cast<NodeId>(g.num_nodes());
  }
  state.counters["threads"] = rtr::util::NumThreads();
}
BENCHMARK(BM_TopKNaiveExact);

// Steady-state allocation audit (the CI gate). Runs a fixed query set once
// to warm the arena, then replays it and demands zero operator-new calls.
// Audited on owning AND mapped storage: the span accessors must not hide
// an allocation on the zero-copy path either.
bool AuditSteadyStateAllocsOn(const Graph& g, const char* label) {
  rtr::core::TopKParams params;
  params.k = 10;
  rtr::core::QueryWorkspace ws;
  rtr::core::TopKResult result;
  const NodeId queries[] = {1, 37, 404, 1029, 1777};
  rtr::Query query(1);  // reused: the engine never copies the query
  for (NodeId q : queries) {
    query[0] = q;
    rtr::Status status =
        rtr::core::TopKRoundTripRank(g, query, params, ws, &result);
    if (!status.ok()) {
      std::fprintf(stderr, "alloc audit: warm-up query failed: %s\n",
                   status.ToString().c_str());
      return false;
    }
  }
  const uint64_t before = rtr::bench::AllocCount();
  for (NodeId q : queries) {
    query[0] = q;
    (void)rtr::core::TopKRoundTripRank(g, query, params, ws, &result);
  }
  const uint64_t allocs = rtr::bench::AllocCount() - before;
  if (allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state 2SBound (%s graph) made %llu heap "
                 "allocations over %zu queries (expected 0)\n",
                 label, static_cast<unsigned long long>(allocs),
                 sizeof(queries) / sizeof(queries[0]));
    return false;
  }
  std::printf(
      "alloc audit: steady-state 2SBound allocs/query = 0 (%s graph) [OK]\n",
      label);
  return true;
}

bool AuditSteadyStateAllocs() {
  const Graph g = MakeGraph(2000, 8000, 13);
  if (!AuditSteadyStateAllocsOn(g, "owning")) return false;

  // Same audit over the zero-copy loader's borrowed columns.
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "rtr_bench_micro_alloc_audit.rtrsnap";
  if (!rtr::SaveGraphSnapshotToFile(g, path.string()).ok()) {
    std::fprintf(stderr, "alloc audit: cannot write snapshot\n");
    return false;
  }
  rtr::StatusOr<Graph> mapped = rtr::LoadGraphMapped(path.string());
  if (!mapped.ok()) {
    // No mmap on this platform: the owning audit already passed.
    std::printf("alloc audit: mapped-graph leg skipped (%s)\n",
                mapped.status().ToString().c_str());
    return true;
  }
  return AuditSteadyStateAllocsOn(*mapped, "mapped");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  // The audit runs after the benchmarks so a filtered run (e.g. CI's
  // --benchmark_filter) still enforces the zero-allocation contract.
  return AuditSteadyStateAllocs() ? 0 : 1;
}
