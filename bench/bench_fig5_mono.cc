// Reproduces Fig. 5: NDCG@{5,10,20} of RoundTripRank vs the mono-sensed
// baselines (F-Rank/PPR, T-Rank, SimRank, AdamicAdar) on Tasks 1-4, plus
// the paired t-test of the paper's significance claim.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/round_trip_rank.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "ranking/adamic_adar.h"
#include "ranking/combinators.h"
#include "ranking/simrank.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using rtr::datasets::EvalQuery;
using rtr::datasets::EvalTaskSet;
using rtr::eval::TablePrinter;
using rtr::ranking::ProximityMeasure;

constexpr size_t kCutoffs[] = {5, 10, 20};

std::vector<std::unique_ptr<ProximityMeasure>> MakeMeasures(
    const rtr::Graph& g) {
  std::vector<std::unique_ptr<ProximityMeasure>> measures;
  auto scorer = std::make_shared<rtr::ranking::FTScorer>(g);
  measures.push_back(rtr::core::MakeRoundTripRankMeasure(scorer));
  measures.push_back(rtr::ranking::MakeFRankMeasure(scorer));
  measures.push_back(rtr::ranking::MakeTRankMeasure(scorer));
  measures.push_back(rtr::ranking::MakeSimRankMeasure(g));
  measures.push_back(rtr::ranking::MakeAdamicAdarMeasure(g));
  return measures;
}

// ndcg[measure][cutoff] = per-query NDCG values of one task.
using TaskNdcg = std::vector<std::vector<std::vector<double>>>;

TaskNdcg EvaluateTask(const EvalTaskSet& task) {
  std::vector<std::unique_ptr<ProximityMeasure>> measures =
      MakeMeasures(task.graph);
  TaskNdcg ndcg(measures.size(), std::vector<std::vector<double>>(3));
  for (const EvalQuery& query : task.test_queries) {
    for (size_t m = 0; m < measures.size(); ++m) {
      std::vector<double> scores = measures[m]->Score(query.query_nodes);
      std::vector<rtr::NodeId> ranked = rtr::eval::FilteredRanking(
          task.graph, scores, query.query_nodes, task.target_type, 20);
      for (size_t c = 0; c < 3; ++c) {
        ndcg[m][c].push_back(
            rtr::eval::NdcgAtK(ranked, query.ground_truth, kCutoffs[c]));
      }
    }
  }
  return ndcg;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double x : values) sum += x;
  return sum / values.size();
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Fig. 5 — RoundTripRank vs mono-sensed baselines",
      "NDCG@{5,10,20} on Task 1 (Author), Task 2 (Venue), Task 3 (Relevant "
      "URL),\nTask 4 (Equivalent search); alpha = 0.25, C = 0.85.");
  const int num_test = rtr::bench::NumTestQueries();
  rtr::WallTimer timer;

  rtr::datasets::BibNet bibnet = rtr::bench::MakeEffectivenessBibNet();
  rtr::datasets::QLog qlog = rtr::bench::MakeEffectivenessQLog();
  std::vector<EvalTaskSet> tasks;
  tasks.push_back(bibnet.MakeAuthorTask(num_test, 0, 51).value());
  tasks.push_back(bibnet.MakeVenueTask(num_test, 0, 52).value());
  tasks.push_back(qlog.MakeRelevantUrlTask(num_test, 0, 53).value());
  tasks.push_back(qlog.MakeEquivalentPhraseTask(num_test, 0, 54).value());
  std::printf("BibNet: %zu nodes, %zu arcs. QLog: %zu nodes, %zu arcs. "
              "%d queries/task.\n\n",
              bibnet.graph().num_nodes(), bibnet.graph().num_arcs(),
              qlog.graph().num_nodes(), qlog.graph().num_arcs(), num_test);

  const char* measure_names[] = {"RoundTripRank", "F-Rank/PPR", "T-Rank",
                                 "SimRank", "AdamicAdar"};
  const size_t num_measures = 5;
  std::vector<TaskNdcg> results;
  for (const EvalTaskSet& task : tasks) {
    std::printf("evaluating %s ...\n", task.name.c_str());
    results.push_back(EvaluateTask(task));
  }

  std::vector<std::string> header = {"Measure"};
  for (const EvalTaskSet& task : tasks) {
    for (size_t k : kCutoffs) {
      header.push_back(task.name.substr(0, 6) + "@" + std::to_string(k));
    }
  }
  for (size_t k : kCutoffs) header.push_back("Avg@" + std::to_string(k));

  std::printf("\n");
  TablePrinter table(header);
  for (size_t m = 0; m < num_measures; ++m) {
    std::vector<std::string> row = {measure_names[m]};
    double avg[3] = {0, 0, 0};
    for (size_t t = 0; t < tasks.size(); ++t) {
      for (size_t c = 0; c < 3; ++c) {
        double mean = Mean(results[t][m][c]);
        avg[c] += mean / tasks.size();
        row.push_back(TablePrinter::FormatDouble(mean, 4));
      }
    }
    for (size_t c = 0; c < 3; ++c) {
      row.push_back(TablePrinter::FormatDouble(avg[c], 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // Significance of RoundTripRank vs each baseline on pooled NDCG@5.
  std::printf("\nPaired two-tail t-tests (pooled per-query NDCG@5, "
              "RoundTripRank vs baseline):\n");
  std::vector<double> rtr_pooled;
  for (size_t t = 0; t < tasks.size(); ++t) {
    rtr_pooled.insert(rtr_pooled.end(), results[t][0][0].begin(),
                      results[t][0][0].end());
  }
  for (size_t m = 1; m < num_measures; ++m) {
    std::vector<double> baseline_pooled;
    for (size_t t = 0; t < tasks.size(); ++t) {
      baseline_pooled.insert(baseline_pooled.end(), results[t][m][0].begin(),
                             results[t][m][0].end());
    }
    rtr::PairedTTestResult test =
        rtr::PairedTTest(rtr_pooled, baseline_pooled);
    std::printf("  vs %-12s mean diff %+.4f, t = %6.2f, p %s0.01 %s\n",
                measure_names[m], test.mean_difference, test.t_statistic,
                test.p_value < 0.01 ? "<" : ">=",
                test.SignificantAt(0.01) ? "(significant)" : "");
  }
  std::printf("\nShape check (paper: RoundTripRank wins on average, "
              "F-Rank runner-up):\n  elapsed %.1fs\n",
              timer.ElapsedSeconds());
  return 0;
}
