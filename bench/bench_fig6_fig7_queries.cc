// Reproduces Figs. 1, 6 and 7: the qualitative venue rankings for topic
// queries (multi-term query nodes), contrasting importance-based F-Rank,
// specificity-based T-Rank, and the balanced RoundTripRank. On the
// synthetic BibNet the expected shape is: F-Rank surfaces the broad major
// venues of the area, T-Rank the topic's specialized venue(s), and
// RoundTripRank a mixture led by venues both important and specific.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/round_trip_rank.h"
#include "eval/experiment.h"
#include "ranking/combinators.h"
#include "ranking/pagerank.h"

namespace {

using rtr::NodeId;
using rtr::datasets::BibNet;

void RankVenues(const BibNet& bibnet, int topic, const char* figure) {
  const rtr::Graph& g = bibnet.graph();
  std::vector<NodeId> query = bibnet.TopicQueryTerms(topic, 3);
  std::printf("%s — query: top-3 terms of topic %d (area %d), %zu query "
              "nodes\n\n",
              figure, topic,
              topic / bibnet.config().topics_per_area, query.size());

  auto scorer = std::make_shared<rtr::ranking::FTScorer>(g);
  struct Entry {
    const char* label;
    std::unique_ptr<rtr::ranking::ProximityMeasure> measure;
  };
  std::vector<Entry> entries;
  entries.push_back({"(a) F-Rank/PPR", rtr::ranking::MakeFRankMeasure(scorer)});
  entries.push_back({"(b) T-Rank", rtr::ranking::MakeTRankMeasure(scorer)});
  entries.push_back(
      {"(c) RoundTripRank", rtr::core::MakeRoundTripRankMeasure(scorer)});

  // Venue name lookup.
  std::vector<std::string> venue_name(g.num_nodes());
  for (const BibNet::Venue& venue : bibnet.venues()) {
    venue_name[venue.node] =
        venue.name + (venue.major ? " [major]" : " [specialized]");
  }

  std::vector<std::vector<std::string>> columns;
  for (Entry& entry : entries) {
    std::vector<double> scores = entry.measure->Score(query);
    std::vector<NodeId> ranked = rtr::eval::FilteredRanking(
        g, scores, query, bibnet.venue_type(), 5);
    std::vector<std::string> column;
    for (NodeId v : ranked) column.push_back(venue_name[v]);
    columns.push_back(std::move(column));
  }

  rtr::eval::TablePrinter table(
      {"Rank", entries[0].label, entries[1].label, entries[2].label});
  for (size_t rank = 0; rank < 5; ++rank) {
    std::vector<std::string> row = {std::to_string(rank + 1)};
    for (const auto& column : columns) {
      row.push_back(rank < column.size() ? column[rank] : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Figs. 6 & 7 — qualitative venue rankings for topic queries",
      "The synthetic counterparts of 'spatio temporal data' and 'semantic "
      "web':\nmulti-node term queries ranked for venues under three measures.");
  BibNet bibnet = rtr::bench::MakeEffectivenessBibNet();
  std::printf("BibNet: %zu nodes, %zu arcs\n\n", bibnet.graph().num_nodes(),
              bibnet.graph().num_arcs());
  // Two topics in different areas play the roles of the paper's two queries.
  RankVenues(bibnet, 2, "Fig. 6 (topic-2 query)");
  RankVenues(bibnet, 1 * bibnet.config().topics_per_area + 4,
             "Fig. 7 (topic-12 query)");
  std::printf(
      "Shape check (paper): column (a) led by broad major venues, column "
      "(b) by\nthe topic's specialized venue, column (c) a balance of "
      "both.\n");
  return 0;
}
