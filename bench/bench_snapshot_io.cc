// Snapshot I/O benchmark: cold-start cost of text parse + GraphBuilder
// replay vs one bulk binary snapshot read, plus the traversal kernels the
// columnar (SoA) refactor targets (compare against bench_micro's
// BM_FRank/TRankPowerIteration for the end-to-end numbers).
//
// Scale knobs: RTR_SCALE_PAPERS (full BibNet size, default 40000) and
// RTR_SNAPIO_REPS (timing repetitions, default 3). Exits non-zero if a
// snapshot round-trip is not bit-identical to the saved graph.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/twosbound.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/snapshot.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using rtr::Graph;
using rtr::NodeId;

struct LoadTimes {
  double text_ms = 0.0;
  double snap_ms = 0.0;
  uintmax_t text_bytes = 0;
  uintmax_t snap_bytes = 0;
};

// Best-of-N wall time of `fn` in milliseconds.
template <typename Fn>
double BestMillis(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    rtr::WallTimer timer;
    fn();
    double ms = timer.ElapsedMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

template <typename T>
bool ColumnsEqual(std::span<const T> a, std::span<const T> b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

// Bit-exact column comparison — the snapshot contract.
bool GraphsIdentical(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    if (a.node_type(v) != b.node_type(v)) return false;
    if (a.out_weight(v) != b.out_weight(v)) return false;
  }
  return a.num_arcs() == b.num_arcs() &&
         a.type_names() == b.type_names() &&
         ColumnsEqual(a.out_offsets(), b.out_offsets()) &&
         ColumnsEqual(a.out_targets(), b.out_targets()) &&
         ColumnsEqual(a.out_arc_weights(), b.out_arc_weights()) &&
         ColumnsEqual(a.out_probs(), b.out_probs()) &&
         ColumnsEqual(a.in_offsets(), b.in_offsets()) &&
         ColumnsEqual(a.in_sources(), b.in_sources()) &&
         ColumnsEqual(a.in_arc_weights(), b.in_arc_weights()) &&
         ColumnsEqual(a.in_probs(), b.in_probs());
}

// One power-iteration-style sweep over the out columns; returns arcs/ms.
// This is the memory-bound kernel the SoA layout optimizes: only the
// (target, prob) columns are streamed.
double SweepArcsPerMs(const Graph& g, int reps) {
  std::vector<double> x(g.num_nodes(), 1.0);
  std::vector<double> y(g.num_nodes(), 0.0);
  double ms = BestMillis(reps, [&] {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto targets = g.out_targets(v);
      auto probs = g.out_probs(v);
      double sum = 0.0;
      for (size_t i = 0; i < targets.size(); ++i) {
        sum += probs[i] * x[targets[i]];
      }
      y[v] = sum;
    }
  });
  if (y[0] > 1e300) std::printf("?");  // keep the sweep observable
  return ms <= 0.0 ? 0.0 : static_cast<double>(g.num_arcs()) / ms;
}

// Random-walk sampling throughput (steps/ms) via Graph::SampleOutNeighbor.
double WalkStepsPerMs(const Graph& g, int steps) {
  rtr::Rng rng(99);
  NodeId current = rtr::bench::SampleQueryNode(g, rng);
  if (current == rtr::kInvalidNode) return 0.0;
  rtr::WallTimer timer;
  for (int s = 0; s < steps; ++s) {
    NodeId next = g.SampleOutNeighbor(current, rng.NextDouble());
    current = next == rtr::kInvalidNode
                  ? rtr::bench::SampleQueryNode(g, rng)
                  : next;
  }
  double ms = timer.ElapsedMillis();
  if (current == rtr::kInvalidNode) return 0.0;
  return ms <= 0.0 ? 0.0 : static_cast<double>(steps) / ms;
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "bench_snapshot_io",
      "text-load vs binary-snapshot-load, plus SoA traversal kernels");

  const int reps = rtr::bench::EnvInt("RTR_SNAPIO_REPS", 3);
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "rtr_bench_snapshot_io";
  fs::create_directories(dir);

  struct Case {
    const char* label;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back(
      {"bibnet-effect", rtr::bench::MakeEffectivenessBibNet().graph()});
  cases.push_back({"bibnet-full", rtr::bench::MakeFullBibNet().graph()});

  std::printf("\n%-14s %10s %10s %9s %9s %12s %12s %8s\n", "graph", "nodes",
              "arcs", "text MB", "snap MB", "text-load ms", "snap-load ms",
              "speedup");
  bool all_identical = true;
  double worst_speedup = 1e300;
  for (const Case& c : cases) {
    const std::string text_path = (dir / (std::string(c.label) + ".txt")).string();
    const std::string snap_path =
        (dir / (std::string(c.label) + ".rtrsnap")).string();
    CHECK(rtr::SaveGraphToFile(c.graph, text_path).ok());
    CHECK(rtr::SaveGraphSnapshotToFile(c.graph, snap_path).ok());

    LoadTimes t;
    t.text_bytes = fs::file_size(text_path);
    t.snap_bytes = fs::file_size(snap_path);
    t.text_ms = BestMillis(
        reps, [&] { CHECK(rtr::LoadGraphFromFile(text_path).ok()); });
    Graph reloaded;
    t.snap_ms = BestMillis(reps, [&] {
      reloaded = rtr::LoadGraphSnapshotFromFile(snap_path).value();
    });
    const bool identical = GraphsIdentical(c.graph, reloaded);
    all_identical = all_identical && identical;
    const double speedup = t.snap_ms > 0.0 ? t.text_ms / t.snap_ms : 0.0;
    worst_speedup = std::min(worst_speedup, speedup);

    std::printf("%-14s %10zu %10zu %9.1f %9.1f %12.1f %12.2f %7.1fx%s\n",
                c.label, c.graph.num_nodes(), c.graph.num_arcs(),
                t.text_bytes / 1e6, t.snap_bytes / 1e6, t.text_ms, t.snap_ms,
                speedup, identical ? "" : "  [COLUMN MISMATCH]");
  }

  // Cold-start table: time from "process has a file path" to "first top-K
  // answer", per loader. The mapped loader defers column I/O to page
  // faults, so its load leg collapses and the first query absorbs the
  // faults it actually touches (the CI bench-smoke artifact).
  {
    const Graph& big = cases.back().graph;
    const std::string text_path =
        (dir / (std::string(cases.back().label) + ".txt")).string();
    const std::string snap_path =
        (dir / (std::string(cases.back().label) + ".rtrsnap")).string();
    rtr::Rng rng(7);
    const NodeId q = rtr::bench::SampleQueryNode(big, rng);
    rtr::core::TopKParams params;
    params.k = 10;

    struct ColdStart {
      const char* label;
      double load_ms = 0.0;
      double first_query_ms = 0.0;
    };
    auto measure = [&](const char* label, auto&& load) {
      ColdStart cs;
      cs.label = label;
      rtr::WallTimer load_timer;
      Graph g = load();
      cs.load_ms = load_timer.ElapsedMillis();
      rtr::WallTimer query_timer;
      CHECK(rtr::core::TopKRoundTripRank(g, {q}, params).ok());
      cs.first_query_ms = query_timer.ElapsedMillis();
      return cs;
    };
    const ColdStart rows[] = {
        measure("text", [&] { return rtr::LoadGraphFromFile(text_path).value(); }),
        measure("bulk-read",
                [&] { return rtr::LoadGraphSnapshotFromFile(snap_path).value(); }),
        measure("mmap", [&] { return rtr::LoadGraphMapped(snap_path).value(); }),
    };
    std::printf("\ncold start to first top-K answer (%s):\n",
                cases.back().label);
    std::printf("  %-10s %10s %14s %10s\n", "loader", "load ms",
                "first-query ms", "total ms");
    for (const ColdStart& cs : rows) {
      std::printf("  %-10s %10.2f %14.2f %10.2f\n", cs.label, cs.load_ms,
                  cs.first_query_ms, cs.load_ms + cs.first_query_ms);
    }
    const double bulk_total = rows[1].load_ms + rows[1].first_query_ms;
    const double mmap_total = rows[2].load_ms + rows[2].first_query_ms;
    std::printf("  mmap cold-start speedup over bulk-read: %.1fx\n",
                mmap_total > 0.0 ? bulk_total / mmap_total : 0.0);
  }

  std::printf("\ntraversal kernels (columnar layout, largest graph):\n");
  const Graph& big = cases.back().graph;
  const double sweep = SweepArcsPerMs(big, reps);
  std::printf("  out-column sweep:  %.0f arcs/ms (%.2f GB/s over "
              "target+prob columns)\n",
              sweep, sweep * 1e3 * (sizeof(NodeId) + sizeof(double)) / 1e9);
  std::printf("  random-walk steps: %.0f steps/ms\n",
              WalkStepsPerMs(big, 2000000));
  std::printf("\ncompare against bench_micro BM_FRank/TRankPowerIteration "
              "for the end-to-end iteration numbers.\n");

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: snapshot round-trip not bit-identical\n");
    return 1;
  }
  std::printf("snapshot round-trips bit-identical; worst speedup %.1fx\n",
              worst_speedup);
  return 0;
}
