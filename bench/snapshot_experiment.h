#ifndef RTR_BENCH_SNAPSHOT_EXPERIMENT_H_
#define RTR_BENCH_SNAPSHOT_EXPERIMENT_H_

// The growing-graph experiment shared by Fig. 12 (absolute numbers) and
// Fig. 13 (growth rates): five cumulative snapshots per dataset, snapshot i
// served by i+1 graph processors, per-query active-set size and query time
// through the distributed 2SBound.

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/twosbound.h"
#include "dist/distributed_topk.h"
#include "graph/subgraph.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/timer.h"

namespace rtr::bench {

struct SnapshotPoint {
  std::string label;
  int num_gps = 1;
  size_t snapshot_bytes = 0;
  SummaryStats active_set_mb;
  SummaryStats query_ms;
};

inline SnapshotPoint MeasureSnapshot(const Graph& g, const std::string& label,
                                     int num_gps, int num_queries,
                                     uint64_t seed) {
  SnapshotPoint point;
  point.label = label;
  point.num_gps = num_gps;
  point.snapshot_bytes = g.MemoryBytes();

  // Aliasing shared_ptr: the caller's graph outlives this measurement.
  dist::Cluster cluster({std::shared_ptr<const Graph>{}, &g}, num_gps);
  Rng rng(seed);
  std::vector<double> active_mb, query_ms;
  for (int sampled = 0; sampled < num_queries; ++sampled) {
    NodeId q = SampleQueryNode(g, rng);
    CHECK_NE(q, kInvalidNode)
        << "could not sample nodes with outgoing arcs in snapshot " << label;
    core::TopKParams params;
    params.k = 10;
    params.epsilon = 0.01;
    dist::DistributedTopKResult result =
        dist::DistributedTopK(cluster, {q}, params).value();
    active_mb.push_back(static_cast<double>(result.active_set_bytes) / 1e6);
    query_ms.push_back(result.query_millis);
  }
  point.active_set_mb = Summarize(active_mb);
  point.query_ms = Summarize(query_ms);
  return point;
}

inline std::vector<SnapshotPoint> RunBibNetSnapshots(int num_queries) {
  datasets::BibNet bibnet = MakeFullBibNet();
  std::vector<SnapshotPoint> points;
  const int years[] = {1994, 1998, 2002, 2006, 2010};
  for (int i = 0; i < 5; ++i) {
    Subgraph snap = bibnet.Snapshot(years[i]).value();
    points.push_back(MeasureSnapshot(snap.graph, std::to_string(years[i]),
                                     i + 1, num_queries,
                                     1200 + static_cast<uint64_t>(i)));
  }
  return points;
}

inline std::vector<SnapshotPoint> RunQLogSnapshots(int num_queries) {
  datasets::QLog qlog = MakeFullQLog();
  std::vector<SnapshotPoint> points;
  const int days[] = {6, 12, 18, 24, 30};
  const char* labels[] = {"5/6", "5/12", "5/18", "5/24", "5/31"};
  for (int i = 0; i < 5; ++i) {
    Subgraph snap = qlog.Snapshot(days[i]).value();
    points.push_back(MeasureSnapshot(snap.graph, labels[i], i + 1,
                                     num_queries,
                                     1300 + static_cast<uint64_t>(i)));
  }
  return points;
}

}  // namespace rtr::bench

#endif  // RTR_BENCH_SNAPSHOT_EXPERIMENT_H_
