// Reproduces Fig. 4: RoundTripRank on the toy bibliographic graph of Fig. 2
// with constant walk lengths L = L' = 2, plus the geometric-length ranking.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/round_trip_rank.h"
#include "eval/experiment.h"
#include "graph/builder.h"
#include "ranking/pagerank.h"

namespace {

using rtr::Graph;
using rtr::GraphBuilder;
using rtr::NodeId;

struct Toy {
  Graph graph;
  NodeId t1, t2;
  NodeId p[7];
  NodeId v1, v2, v3;
  std::vector<std::string> names;
};

Toy MakeToy() {
  GraphBuilder b;
  Toy toy;
  toy.t1 = b.AddNode();
  toy.t2 = b.AddNode();
  for (auto& pid : toy.p) pid = b.AddNode();
  toy.v1 = b.AddNode();
  toy.v2 = b.AddNode();
  toy.v3 = b.AddNode();
  for (int i = 0; i < 5; ++i) b.AddUndirectedEdge(toy.t1, toy.p[i], 1.0);
  b.AddUndirectedEdge(toy.t2, toy.p[5], 1.0);
  b.AddUndirectedEdge(toy.t2, toy.p[6], 1.0);
  b.AddUndirectedEdge(toy.p[0], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[1], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[5], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[6], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[2], toy.v2, 1.0);
  b.AddUndirectedEdge(toy.p[3], toy.v2, 1.0);
  b.AddUndirectedEdge(toy.p[4], toy.v3, 1.0);
  toy.graph = b.Build().value();
  toy.names = {"t1", "t2", "p1", "p2", "p3", "p4", "p5",
               "p6", "p7", "v1", "v2", "v3"};
  return toy;
}

}  // namespace

int main() {
  Toy toy = MakeToy();
  std::printf("Fig. 4 — RoundTripRank on the Fig. 2 toy graph, query t1,\n");
  std::printf("constant walk lengths L = L' = 2.\n\n");

  std::vector<double> scores =
      rtr::core::ConstantLengthRoundTripScores(toy.graph, toy.t1, 2, 2);

  rtr::eval::TablePrinter table(
      {"Target", "RoundTripRank (computed)", "Paper value"});
  struct Row {
    NodeId node;
    const char* paper;
  };
  const Row rows[] = {{toy.v1, "0.05"},
                      {toy.v2, "0.1"},
                      {toy.v3, "0.05"},
                      {toy.t1, "0.25"}};
  for (const Row& row : rows) {
    table.AddRow({toy.names[row.node],
                  rtr::eval::TablePrinter::FormatDouble(scores[row.node], 4),
                  row.paper});
  }
  double others = 0.0;
  for (NodeId v = 0; v < toy.graph.num_nodes(); ++v) {
    if (v != toy.v1 && v != toy.v2 && v != toy.v3 && v != toy.t1) {
      others += scores[v];
    }
  }
  table.AddRow({"others", rtr::eval::TablePrinter::FormatDouble(others, 4),
                "0 (none)"});
  table.Print();

  std::printf("\nGeometric walk lengths (alpha = 0.25), decomposition\n");
  std::printf("r(q,v) = f(q,v) * t(q,v) (Proposition 2):\n\n");
  auto scorer = std::make_shared<rtr::ranking::FTScorer>(toy.graph);
  auto rtr_measure = rtr::core::MakeRoundTripRankMeasure(scorer);
  std::vector<double> geo = rtr_measure->Score({toy.t1});
  rtr::eval::TablePrinter geo_table({"Node", "f(q,v)", "t(q,v)", "r(q,v)"});
  const auto& ft = scorer->Compute({toy.t1});
  for (NodeId v : {toy.v1, toy.v2, toy.v3}) {
    geo_table.AddRow({toy.names[v],
                      rtr::eval::TablePrinter::FormatDouble(ft.f[v], 5),
                      rtr::eval::TablePrinter::FormatDouble(ft.t[v], 5),
                      rtr::eval::TablePrinter::FormatDouble(geo[v], 6)});
  }
  geo_table.Print();
  std::printf(
      "\nShape check: v2 (important AND specific) outranks v1 and v3: %s\n",
      (geo[toy.v2] > geo[toy.v1] && geo[toy.v2] > geo[toy.v3]) ? "PASS"
                                                               : "FAIL");
  return 0;
}
