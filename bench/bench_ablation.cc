// Ablation study (not a paper figure; DESIGN.md §6): sensitivity of 2SBound
// to its design choices — the expansion granularities m_f / m_t (the paper
// fixes 100 / 5 "based on some trial queries" and claims insensitivity),
// the Stage-II components (the Gupta/Sarkar/G+S grid), and the slack.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/twosbound.h"
#include "eval/experiment.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using rtr::NodeId;
using rtr::core::TopKParams;
using rtr::core::TopKScheme;
using rtr::eval::TablePrinter;

std::vector<NodeId> SampleQueries(const rtr::Graph& g, int count,
                                  uint64_t seed) {
  rtr::Rng rng(seed);
  std::vector<NodeId> queries;
  while (static_cast<int>(queries.size()) < count) {
    NodeId v = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    if (g.out_degree(v) > 0) queries.push_back(v);
  }
  return queries;
}

double MeanQueryMillis(const rtr::Graph& g,
                       const std::vector<NodeId>& queries,
                       const TopKParams& params) {
  std::vector<double> times;
  for (NodeId q : queries) {
    rtr::WallTimer timer;
    auto result = rtr::core::TopKRoundTripRank(g, {q}, params);
    CHECK(result.ok());
    times.push_back(timer.ElapsedMillis());
  }
  return rtr::Summarize(times).mean;
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Ablation — 2SBound design choices",
      "Expansion granularity sweep, Stage-II component grid, slack sweep.\n"
      "K = 10 on the effectiveness-scale BibNet.");
  rtr::datasets::BibNet bibnet = rtr::bench::MakeEffectivenessBibNet();
  const rtr::Graph& g = bibnet.graph();
  const int num_queries = rtr::bench::NumEfficiencyQueries();
  std::vector<NodeId> queries = SampleQueries(g, num_queries, 4242);
  std::printf("BibNet: %zu nodes, %zu arcs, %d queries\n\n", g.num_nodes(),
              g.num_arcs(), num_queries);

  // --- (a) m_f sensitivity (paper default 100).
  {
    TablePrinter table({"m_f", "avg query ms"});
    for (int m_f : {10, 50, 100, 200, 500}) {
      TopKParams params;
      params.k = 10;
      params.epsilon = 0.01;
      params.m_f = m_f;
      table.AddRow({std::to_string(m_f),
                    TablePrinter::FormatDouble(
                        MeanQueryMillis(g, queries, params), 2)});
    }
    std::printf("(a) F-side expansion granularity m_f (m_t = 5):\n");
    table.Print();
  }

  // --- (b) m_t sensitivity (paper default 5).
  {
    TablePrinter table({"m_t", "avg query ms"});
    for (int m_t : {1, 5, 20, 100}) {
      TopKParams params;
      params.k = 10;
      params.epsilon = 0.01;
      params.m_t = m_t;
      table.AddRow({std::to_string(m_t),
                    TablePrinter::FormatDouble(
                        MeanQueryMillis(g, queries, params), 2)});
    }
    std::printf("\n(b) T-side expansion granularity m_t (m_f = 100):\n");
    table.Print();
  }

  // --- (c) Stage-II component grid: which side's machinery buys the
  // speedup (this is the Fig. 11 scheme grid read as an ablation).
  {
    TablePrinter table({"F bound + Stage II", "T fixpoint", "scheme",
                        "avg query ms"});
    struct Cell {
      TopKScheme scheme;
      const char* f_on;
      const char* t_on;
    };
    const Cell grid[] = {
        {TopKScheme::k2SBound, "yes", "yes"},
        {TopKScheme::kSarkar, "yes", "no"},
        {TopKScheme::kGupta, "no", "yes"},
        {TopKScheme::kGPlusS, "no", "no"},
    };
    for (const Cell& cell : grid) {
      TopKParams params;
      params.k = 10;
      params.epsilon = 0.01;
      params.scheme = cell.scheme;
      table.AddRow({cell.f_on, cell.t_on,
                    rtr::core::TopKSchemeName(cell.scheme),
                    TablePrinter::FormatDouble(
                        MeanQueryMillis(g, queries, params), 2)});
    }
    std::printf("\n(c) two-stage components (eps = 0.01):\n");
    table.Print();
  }

  // --- (d) slack sweep beyond the paper's range.
  {
    TablePrinter table({"eps", "avg query ms", "avg rounds"});
    for (double eps : {0.0001, 0.001, 0.01, 0.03, 0.1}) {
      TopKParams params;
      params.k = 10;
      params.epsilon = eps;
      std::vector<double> times, rounds;
      for (NodeId q : queries) {
        rtr::WallTimer timer;
        auto result = rtr::core::TopKRoundTripRank(g, {q}, params).value();
        times.push_back(timer.ElapsedMillis());
        rounds.push_back(result.rounds);
      }
      table.AddRow({TablePrinter::FormatDouble(eps, 4),
                    TablePrinter::FormatDouble(rtr::Summarize(times).mean, 2),
                    TablePrinter::FormatDouble(
                        rtr::Summarize(rounds).mean, 1)});
    }
    std::printf("\n(d) slack sweep (2SBound):\n");
    table.Print();
  }
  std::printf("\nExpected: flat-ish (a)/(b) near the paper defaults "
              "(insensitivity claim),\nthe full scheme fastest in (c), and "
              "monotone cost in (d).\n");
  return 0;
}
