// Reproduces Fig. 8: NDCG@5 of RoundTripRank+ as the specificity bias beta
// sweeps [0, 1] on each of the four tasks. The paper's shape: extreme betas
// are poor everywhere; beta* ≈ 0.5 for Task 1, < 0.5 for Tasks 2-3, > 0.5
// for Task 4.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/round_trip_rank.h"
#include "eval/experiment.h"
#include "util/timer.h"

namespace {

using rtr::datasets::EvalTaskSet;
using rtr::eval::TablePrinter;

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Fig. 8 — effect of the specificity bias beta",
      "NDCG@5 of RoundTripRank+ for beta in {0, 0.1, ..., 1} on Tasks 1-4.");
  const int num_test = rtr::bench::NumTestQueries();
  rtr::WallTimer timer;

  rtr::datasets::BibNet bibnet = rtr::bench::MakeEffectivenessBibNet();
  rtr::datasets::QLog qlog = rtr::bench::MakeEffectivenessQLog();
  std::vector<EvalTaskSet> tasks;
  tasks.push_back(bibnet.MakeAuthorTask(num_test, 0, 81).value());
  tasks.push_back(bibnet.MakeVenueTask(num_test, 0, 82).value());
  tasks.push_back(qlog.MakeRelevantUrlTask(num_test, 0, 83).value());
  tasks.push_back(qlog.MakeEquivalentPhraseTask(num_test, 0, 84).value());

  std::vector<double> betas = rtr::eval::DefaultBetaGrid();
  std::vector<std::string> header = {"beta"};
  for (const EvalTaskSet& task : tasks) header.push_back(task.name);
  TablePrinter table(header);

  // ndcg[task][beta]
  std::vector<std::vector<double>> ndcg(tasks.size(),
                                        std::vector<double>(betas.size()));
  for (size_t t = 0; t < tasks.size(); ++t) {
    const EvalTaskSet& task = tasks[t];
    auto scorer = std::make_shared<rtr::ranking::FTScorer>(task.graph);
    std::vector<std::unique_ptr<rtr::ranking::ProximityMeasure>> measures;
    for (double beta : betas) {
      measures.push_back(
          rtr::core::MakeRoundTripRankPlusMeasure(scorer, beta));
    }
    // Query-outer iteration keeps the (f, t) cache hot across the grid.
    for (const rtr::datasets::EvalQuery& query : task.test_queries) {
      for (size_t b = 0; b < betas.size(); ++b) {
        ndcg[t][b] += rtr::eval::QueryNdcg(task.graph, *measures[b], query,
                                           task.target_type, 5);
      }
    }
    for (double& value : ndcg[t]) value /= task.test_queries.size();
  }

  for (size_t b = 0; b < betas.size(); ++b) {
    std::vector<std::string> row = {TablePrinter::FormatDouble(betas[b], 1)};
    for (size_t t = 0; t < tasks.size(); ++t) {
      row.push_back(TablePrinter::FormatDouble(ndcg[t][b], 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nOptimal beta per task:\n");
  for (size_t t = 0; t < tasks.size(); ++t) {
    size_t best = 0;
    for (size_t b = 1; b < betas.size(); ++b) {
      if (ndcg[t][b] > ndcg[t][best]) best = b;
    }
    std::printf("  %-28s beta* = %.1f  (NDCG@5 %.4f; beta=0: %.4f, "
                "beta=1: %.4f)\n",
                tasks[t].name.c_str(), betas[best], ndcg[t][best], ndcg[t][0],
                ndcg[t].back());
  }
  std::printf("\nShape check (paper): extremes lose everywhere; Task 4 "
              "prefers beta > 0.5,\nTasks 2-3 prefer beta <= 0.5.  "
              "elapsed %.1fs\n",
              timer.ElapsedSeconds());
  return 0;
}
