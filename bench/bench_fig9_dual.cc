// Reproduces Fig. 9: NDCG@{5,10,20} of RoundTripRank+ (beta tuned on
// development queries) against the existing dual-sensed baselines with
// their fixed original combinations: TCommute (T=10), ObjSqrtInv (d=0.25),
// Harmonic and Arithmetic means of F-Rank and T-Rank.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/round_trip_rank.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "ranking/combinators.h"
#include "ranking/objectrank.h"
#include "ranking/tcommute.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using rtr::datasets::EvalQuery;
using rtr::datasets::EvalTaskSet;
using rtr::eval::TablePrinter;
using rtr::ranking::ProximityMeasure;

constexpr size_t kCutoffs[] = {5, 10, 20};

std::vector<std::unique_ptr<ProximityMeasure>> MakeMeasures(
    const rtr::Graph& g, double rtr_beta) {
  std::vector<std::unique_ptr<ProximityMeasure>> measures;
  auto scorer = std::make_shared<rtr::ranking::FTScorer>(g);
  measures.push_back(
      rtr::core::MakeRoundTripRankPlusMeasure(scorer, rtr_beta));
  measures.push_back(rtr::ranking::MakeTCommuteMeasure(g));
  measures.push_back(rtr::ranking::MakeObjSqrtInvMeasure(g));
  measures.push_back(rtr::ranking::MakeHarmonicMeasure(scorer));
  measures.push_back(rtr::ranking::MakeArithmeticMeasure(scorer));
  return measures;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double x : values) sum += x;
  return sum / values.size();
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Fig. 9 — RoundTripRank+ vs existing dual-sensed baselines",
      "NDCG@{5,10,20}; RoundTripRank+ beta tuned per task on development "
      "queries\n(non-overlapping with test queries); baselines use their "
      "original fixed trade-off.");
  const int num_test = rtr::bench::NumTestQueries();
  const int num_dev = rtr::bench::NumDevQueries();
  rtr::WallTimer timer;

  rtr::datasets::BibNet bibnet = rtr::bench::MakeEffectivenessBibNet();
  rtr::datasets::QLog qlog = rtr::bench::MakeEffectivenessQLog();
  std::vector<EvalTaskSet> tasks;
  tasks.push_back(bibnet.MakeAuthorTask(num_test, num_dev, 91).value());
  tasks.push_back(bibnet.MakeVenueTask(num_test, num_dev, 92).value());
  tasks.push_back(qlog.MakeRelevantUrlTask(num_test, num_dev, 93).value());
  tasks.push_back(
      qlog.MakeEquivalentPhraseTask(num_test, num_dev, 94).value());

  const char* measure_names[] = {"RoundTripRank+", "TCommute", "ObjSqrtInv",
                                 "Harmonic", "Arithmetic"};
  const size_t num_measures = 5;

  // Tune RoundTripRank+ per task on the dev queries.
  std::vector<double> tuned_betas;
  for (const EvalTaskSet& task : tasks) {
    auto scorer = std::make_shared<rtr::ranking::FTScorer>(task.graph);
    double beta = rtr::eval::TuneBeta(
        task,
        [&scorer](double b) {
          return rtr::core::MakeRoundTripRankPlusMeasure(scorer, b);
        },
        rtr::eval::DefaultBetaGrid());
    tuned_betas.push_back(beta);
    std::printf("%-28s tuned beta* = %.1f\n", task.name.c_str(), beta);
  }

  // ndcg[task][measure][cutoff][query]
  std::vector<std::vector<std::vector<std::vector<double>>>> ndcg;
  for (size_t t = 0; t < tasks.size(); ++t) {
    const EvalTaskSet& task = tasks[t];
    std::printf("evaluating %s ...\n", task.name.c_str());
    auto measures = MakeMeasures(task.graph, tuned_betas[t]);
    std::vector<std::vector<std::vector<double>>> task_ndcg(
        num_measures, std::vector<std::vector<double>>(3));
    for (const EvalQuery& query : task.test_queries) {
      for (size_t m = 0; m < measures.size(); ++m) {
        std::vector<double> scores = measures[m]->Score(query.query_nodes);
        std::vector<rtr::NodeId> ranked = rtr::eval::FilteredRanking(
            task.graph, scores, query.query_nodes, task.target_type, 20);
        for (size_t c = 0; c < 3; ++c) {
          task_ndcg[m][c].push_back(
              rtr::eval::NdcgAtK(ranked, query.ground_truth, kCutoffs[c]));
        }
      }
    }
    ndcg.push_back(std::move(task_ndcg));
  }

  std::vector<std::string> header = {"Measure"};
  for (const EvalTaskSet& task : tasks) {
    for (size_t k : kCutoffs) {
      header.push_back(task.name.substr(0, 6) + "@" + std::to_string(k));
    }
  }
  for (size_t k : kCutoffs) header.push_back("Avg@" + std::to_string(k));
  std::printf("\n");
  TablePrinter table(header);
  for (size_t m = 0; m < num_measures; ++m) {
    std::vector<std::string> row = {measure_names[m]};
    double avg[3] = {0, 0, 0};
    for (size_t t = 0; t < tasks.size(); ++t) {
      for (size_t c = 0; c < 3; ++c) {
        double mean = Mean(ndcg[t][m][c]);
        avg[c] += mean / tasks.size();
        row.push_back(TablePrinter::FormatDouble(mean, 4));
      }
    }
    for (size_t c = 0; c < 3; ++c) {
      row.push_back(TablePrinter::FormatDouble(avg[c], 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nPaired two-tail t-tests (pooled per-query NDCG@5, "
              "RoundTripRank+ vs baseline):\n");
  std::vector<double> rtr_pooled;
  for (size_t t = 0; t < tasks.size(); ++t) {
    rtr_pooled.insert(rtr_pooled.end(), ndcg[t][0][0].begin(),
                      ndcg[t][0][0].end());
  }
  for (size_t m = 1; m < num_measures; ++m) {
    std::vector<double> pooled;
    for (size_t t = 0; t < tasks.size(); ++t) {
      pooled.insert(pooled.end(), ndcg[t][m][0].begin(), ndcg[t][m][0].end());
    }
    rtr::PairedTTestResult test = rtr::PairedTTest(rtr_pooled, pooled);
    std::printf("  vs %-12s mean diff %+.4f, t = %6.2f, p %s0.01 %s\n",
                measure_names[m], test.mean_difference, test.t_statistic,
                test.p_value < 0.01 ? "<" : ">=",
                test.SignificantAt(0.01) ? "(significant)" : "");
  }
  std::printf("\nShape check (paper): RoundTripRank+ best in every column.  "
              "elapsed %.1fs\n",
              timer.ElapsedSeconds());
  return 0;
}
