// Throughput/tail-latency scaling of the concurrent serving subsystem
// (serve::QueryService): QPS and p50/p99 for 1/2/4/8 workers, result cache
// off/on, local engine vs. the distributed AP/GP replay, on the synthetic
// BibNet. Queries are submitted as fast as the admission queue accepts
// them, so QPS here is saturation throughput, not an offered load.
//
// A second scenario drives the service past saturation: FIFO capacity is
// measured closed-loop, then a Zipf-skewed stream is offered open-loop at a
// multiple of that rate, FIFO admission vs the cost-model scheduler
// (serve/scheduler.h: SJF batching, deadline shedding, adaptive epsilon).
// The comparison metric is goodput — completions inside the SLO per second
// — plus tail latency and shed rate.
//
// Environment knobs (beyond bench_common.h's):
//   RTR_SERVE_QUERIES      — stream length per configuration    (default 240)
//   RTR_SERVE_PAPERS       — BibNet paper count                 (default 4000)
//   RTR_SERVE_GPS          — graph processors for the distributed backend (4)
//   RTR_SERVE_OVERLOAD_QUERIES — offered stream in the overload scenario (400)
//   RTR_SERVE_OVERLOAD_PCT — offered load as % of measured capacity   (200)
//   RTR_SERVE_SLO_MS       — SLO/deadline for the overload scenario; 0 =
//                            derive 8x the measured per-query service time (0)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/twosbound.h"
#include "datasets/bibnet.h"
#include "dist/distributed_topk.h"
#include "graph/graph.h"
#include "serve/query_service.h"
#include "util/random.h"

namespace {

using rtr::Graph;
using rtr::NodeId;

struct Row {
  const char* backend;
  bool cache;
  int workers;
  rtr::serve::ServiceStats stats;
};

// Runs one configuration to completion and returns its stats. The stream
// mixes repeated queries (uniform draws from a pool half the stream's size)
// so the cache-on rows serve a realistic skew of hits and misses.
rtr::serve::ServiceStats RunConfig(
    const std::shared_ptr<const Graph>& graph,
    const std::shared_ptr<const rtr::dist::Cluster>& cluster,
    bool enable_cache, int workers, const std::vector<NodeId>& stream,
    const rtr::core::TopKParams& params) {
  rtr::serve::ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = stream.size();  // measure saturation, not shedding
  options.enable_cache = enable_cache;
  options.cache_capacity = 4096;
  std::unique_ptr<rtr::serve::QueryService> service;
  if (cluster != nullptr) {
    service = std::make_unique<rtr::serve::QueryService>(cluster, options);
  } else {
    service = std::make_unique<rtr::serve::QueryService>(graph, options);
  }
  CHECK(service->Start().ok());
  for (NodeId q : stream) {
    CHECK(service->SubmitAsync({{q}, params}, nullptr).ok());
  }
  service->Shutdown();  // drains the queue; uptime freezes here
  return service->stats();
}

// Zipf-skewed query stream over `pool` ranked by index: P(rank r) is
// proportional to 1/(r+1)^1.1. Serving overload is never uniform — a few
// hot entities absorb most of the traffic — and the skew is what gives the
// scheduler's cache-aware epsilon widening and SJF ordering something to
// exploit.
std::vector<NodeId> ZipfStream(const std::vector<NodeId>& pool, int length,
                               rtr::Rng& rng) {
  std::vector<double> cdf(pool.size());
  double total = 0.0;
  for (size_t r = 0; r < pool.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), 1.1);
    cdf[r] = total;
  }
  std::vector<NodeId> stream;
  stream.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    double u = rng.NextDouble() * total;
    size_t r = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    stream.push_back(pool[std::min(r, pool.size() - 1)]);
  }
  return stream;
}

struct OverloadResult {
  rtr::serve::ServiceStats stats;
  uint64_t offered = 0;
  double goodput_qps = 0.0;  // completions inside the SLO per second
  double shed_rate = 0.0;    // rejected / offered
};

// Offers `stream` at a fixed rate (open loop: arrival times are scheduled
// up front and submission sleeps until each one, so a slow service builds
// queue instead of slowing the arrival process down).
OverloadResult RunOverload(const std::shared_ptr<const Graph>& graph,
                           const std::vector<NodeId>& stream,
                           const rtr::core::TopKParams& params,
                           double offered_qps, double slo_millis,
                           int workers, bool scheduler) {
  rtr::serve::ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = 64;  // bounded: overload must shed, not buffer
  options.enable_cache = true;
  options.cache_capacity = 4096;
  options.slo_millis = slo_millis;
  if (scheduler) {
    options.scheduler.enabled = true;
    options.scheduler.batch_size = 8;
    // Widen up to 5x the request epsilon when the queue runs hot.
    options.scheduler.eps_max = params.epsilon * 5.0;
  }
  rtr::serve::QueryService service(graph, options);
  CHECK(service.Start().ok());

  const auto start = std::chrono::steady_clock::now();
  const double interarrival_nanos = 1e9 / offered_qps;
  for (size_t i = 0; i < stream.size(); ++i) {
    const auto due =
        start + std::chrono::nanoseconds(static_cast<int64_t>(
                    interarrival_nanos * static_cast<double>(i)));
    std::this_thread::sleep_until(due);
    rtr::serve::ServeRequest request;
    request.query = {stream[i]};
    request.params = params;
    // The deadline mirrors the SLO: with the scheduler on, work predicted
    // to finish past it is shed at admission instead of served late.
    request.deadline_millis = scheduler ? slo_millis : 0.0;
    // Rejections are the measurement here, not an error.
    (void)service.SubmitAsync(std::move(request), nullptr);
  }
  service.Shutdown();

  OverloadResult result;
  result.stats = service.stats();
  result.offered = stream.size();
  const uint64_t good = result.stats.completed - result.stats.failed -
                        result.stats.slo_violations;
  result.goodput_qps = result.stats.elapsed_seconds <= 0.0
                           ? 0.0
                           : static_cast<double>(good) /
                                 result.stats.elapsed_seconds;
  result.shed_rate = static_cast<double>(result.stats.rejected) /
                     static_cast<double>(result.offered);
  return result;
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Serving throughput",
      "QPS vs tail latency of serve::QueryService: workers x cache x "
      "backend");

  rtr::datasets::BibNetConfig config;
  config.num_papers = rtr::bench::EnvInt("RTR_SERVE_PAPERS", 4000);
  config.num_authors = config.num_papers / 4;
  // Only the bare graph is served, so it is snapshot-cacheable under
  // RTR_SNAPSHOT_DIR (see bench_common.h).
  const auto graph_ptr = std::make_shared<const Graph>(
      rtr::bench::LoadOrBuildGraph(
          "bench_serve_p" + std::to_string(config.num_papers), [&config] {
            return rtr::datasets::BibNet::Generate(config).value().graph();
          }));
  const Graph& graph = *graph_ptr;

  int num_queries = rtr::bench::EnvInt("RTR_SERVE_QUERIES", 240);
  int num_gps = rtr::bench::EnvInt("RTR_SERVE_GPS", 4);
  std::printf("BibNet: %zu nodes, %zu arcs; %d queries per configuration, "
              "%d GPs\n\n",
              graph.num_nodes(), graph.num_arcs(), num_queries, num_gps);

  // One fixed stream for every configuration, so rows are comparable.
  rtr::Rng rng(515);
  std::vector<NodeId> pool;
  for (int i = 0; i < std::max(1, num_queries / 2); ++i) {
    NodeId q = rtr::bench::SampleQueryNode(graph, rng);
    CHECK_NE(q, rtr::kInvalidNode) << "BibNet should have non-dangling nodes";
    pool.push_back(q);
  }
  std::vector<NodeId> stream;
  for (int i = 0; i < num_queries; ++i) {
    stream.push_back(pool[static_cast<size_t>(rng.NextUint64(pool.size()))]);
  }

  rtr::core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01;

  auto cluster =
      std::make_shared<const rtr::dist::Cluster>(graph_ptr, num_gps);

  std::printf("%-12s %-6s %8s %10s %9s %9s %9s %6s\n", "backend", "cache",
              "workers", "QPS", "p50 ms", "p95 ms", "p99 ms", "hit%");
  const int worker_counts[] = {1, 2, 4, 8};
  for (const char* backend : {"local", "distributed"}) {
    std::shared_ptr<const rtr::dist::Cluster> maybe_cluster =
        backend[0] == 'l' ? nullptr : cluster;
    for (bool cache : {false, true}) {
      for (int workers : worker_counts) {
        rtr::serve::ServiceStats stats = RunConfig(
            graph_ptr, maybe_cluster, cache, workers, stream, params);
        uint64_t lookups = stats.cache_hits + stats.cache_misses;
        std::printf("%-12s %-6s %8d %10.1f %9.2f %9.2f %9.2f %5.1f%%\n",
                    backend, cache ? "on" : "off", workers, stats.qps,
                    stats.p50_millis, stats.p95_millis, stats.p99_millis,
                    lookups == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(stats.cache_hits) /
                              static_cast<double>(lookups));
      }
      std::printf("\n");
    }
  }
  std::printf("Expected shape: QPS grows >1x from 1 to 4 workers (shared\n"
              "immutable graph, per-query state on worker stacks), and the\n"
              "cache-on rows trade engine work for hash lookups on the\n"
              "repeated half of the stream.\n\n");

  // ----------------------------------------------------------------------
  // Overload scenario: FIFO vs cost-model scheduler past saturation.
  // ----------------------------------------------------------------------
  const int overload_workers = 2;
  const int overload_queries =
      rtr::bench::EnvInt("RTR_SERVE_OVERLOAD_QUERIES", 400);
  const double overload_factor =
      rtr::bench::EnvInt("RTR_SERVE_OVERLOAD_PCT", 200) / 100.0;

  // Capacity is what this machine actually sustains closed-loop with the
  // same worker count and cache config the overload rows use.
  rtr::serve::ServiceStats capacity_stats = RunConfig(
      graph_ptr, nullptr, /*enable_cache=*/true, overload_workers, stream,
      params);
  const double capacity_qps = capacity_stats.qps;
  const double offered_qps = capacity_qps * overload_factor;
  double slo_millis =
      static_cast<double>(rtr::bench::EnvInt("RTR_SERVE_SLO_MS", 0));
  if (slo_millis <= 0.0) {
    // 8x the measured per-query service time: generous at capacity,
    // hopeless for a request stuck behind a 64-deep FIFO backlog.
    slo_millis = 8.0 * 1000.0 * overload_workers / capacity_qps;
  }
  std::printf("Overload: capacity %.1f QPS (%d workers) -> offering %.1f "
              "QPS (%.0f%%), SLO/deadline %.2f ms, Zipf-skewed pool\n\n",
              capacity_qps, overload_workers, offered_qps,
              100.0 * overload_factor, slo_millis);

  rtr::Rng zipf_rng(909);
  std::vector<NodeId> overload_stream =
      ZipfStream(pool, overload_queries, zipf_rng);

  std::printf("%-10s %10s %10s %9s %9s %7s %7s %7s\n", "admission",
              "goodput", "QPS", "p50 ms", "p99 ms", "shed%", "eps+", "batch");
  OverloadResult fifo;
  OverloadResult sched;
  for (bool scheduler : {false, true}) {
    OverloadResult r =
        RunOverload(graph_ptr, overload_stream, params, offered_qps,
                    slo_millis, overload_workers, scheduler);
    std::printf("%-10s %10.1f %10.1f %9.2f %9.2f %6.1f%% %7llu %7llu\n",
                scheduler ? "scheduler" : "fifo", r.goodput_qps, r.stats.qps,
                r.stats.p50_millis, r.stats.p99_millis, 100.0 * r.shed_rate,
                static_cast<unsigned long long>(r.stats.eps_widened),
                static_cast<unsigned long long>(r.stats.batches));
    (scheduler ? sched : fifo) = r;
  }
  const double goodput_gain =
      fifo.goodput_qps <= 0.0 ? 0.0 : sched.goodput_qps / fifo.goodput_qps;
  const double p99_drop =
      fifo.stats.p99_millis <= 0.0
          ? 0.0
          : 1.0 - sched.stats.p99_millis / fifo.stats.p99_millis;
  std::printf("\nscheduler vs fifo at %.0f%% load: %.2fx goodput, %.0f%% "
              "lower p99 (shed %.1f%% vs %.1f%%)\n",
              100.0 * overload_factor, goodput_gain, 100.0 * p99_drop,
              100.0 * sched.shed_rate, 100.0 * fifo.shed_rate);
  std::printf("Expected shape: FIFO serves every admitted request however\n"
              "late, so overload turns into deep queue waits and SLO\n"
              "misses; the scheduler sheds predicted-late work at\n"
              "admission, widens epsilon under pressure, and batches the\n"
              "drain, converting the same offered load into completions\n"
              "that still land inside the SLO.\n");
  return 0;
}
