// Throughput/tail-latency scaling of the concurrent serving subsystem
// (serve::QueryService): QPS and p50/p99 for 1/2/4/8 workers, result cache
// off/on, local engine vs. the distributed AP/GP replay, on the synthetic
// BibNet. Queries are submitted as fast as the admission queue accepts
// them, so QPS here is saturation throughput, not an offered load.
//
// Environment knobs (beyond bench_common.h's):
//   RTR_SERVE_QUERIES — stream length per configuration   (default 240)
//   RTR_SERVE_PAPERS  — BibNet paper count                (default 4000)
//   RTR_SERVE_GPS     — graph processors for the distributed backend (4)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/twosbound.h"
#include "datasets/bibnet.h"
#include "dist/distributed_topk.h"
#include "graph/graph.h"
#include "serve/query_service.h"
#include "util/random.h"

namespace {

using rtr::Graph;
using rtr::NodeId;

struct Row {
  const char* backend;
  bool cache;
  int workers;
  rtr::serve::ServiceStats stats;
};

// Runs one configuration to completion and returns its stats. The stream
// mixes repeated queries (uniform draws from a pool half the stream's size)
// so the cache-on rows serve a realistic skew of hits and misses.
rtr::serve::ServiceStats RunConfig(
    const std::shared_ptr<const Graph>& graph,
    const std::shared_ptr<const rtr::dist::Cluster>& cluster,
    bool enable_cache, int workers, const std::vector<NodeId>& stream,
    const rtr::core::TopKParams& params) {
  rtr::serve::ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = stream.size();  // measure saturation, not shedding
  options.enable_cache = enable_cache;
  options.cache_capacity = 4096;
  std::unique_ptr<rtr::serve::QueryService> service;
  if (cluster != nullptr) {
    service = std::make_unique<rtr::serve::QueryService>(cluster, options);
  } else {
    service = std::make_unique<rtr::serve::QueryService>(graph, options);
  }
  CHECK(service->Start().ok());
  for (NodeId q : stream) {
    CHECK(service->SubmitAsync({{q}, params}, nullptr).ok());
  }
  service->Shutdown();  // drains the queue; uptime freezes here
  return service->stats();
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Serving throughput",
      "QPS vs tail latency of serve::QueryService: workers x cache x "
      "backend");

  rtr::datasets::BibNetConfig config;
  config.num_papers = rtr::bench::EnvInt("RTR_SERVE_PAPERS", 4000);
  config.num_authors = config.num_papers / 4;
  // Only the bare graph is served, so it is snapshot-cacheable under
  // RTR_SNAPSHOT_DIR (see bench_common.h).
  const auto graph_ptr = std::make_shared<const Graph>(
      rtr::bench::LoadOrBuildGraph(
          "bench_serve_p" + std::to_string(config.num_papers), [&config] {
            return rtr::datasets::BibNet::Generate(config).value().graph();
          }));
  const Graph& graph = *graph_ptr;

  int num_queries = rtr::bench::EnvInt("RTR_SERVE_QUERIES", 240);
  int num_gps = rtr::bench::EnvInt("RTR_SERVE_GPS", 4);
  std::printf("BibNet: %zu nodes, %zu arcs; %d queries per configuration, "
              "%d GPs\n\n",
              graph.num_nodes(), graph.num_arcs(), num_queries, num_gps);

  // One fixed stream for every configuration, so rows are comparable.
  rtr::Rng rng(515);
  std::vector<NodeId> pool;
  for (int i = 0; i < std::max(1, num_queries / 2); ++i) {
    NodeId q = rtr::bench::SampleQueryNode(graph, rng);
    CHECK_NE(q, rtr::kInvalidNode) << "BibNet should have non-dangling nodes";
    pool.push_back(q);
  }
  std::vector<NodeId> stream;
  for (int i = 0; i < num_queries; ++i) {
    stream.push_back(pool[static_cast<size_t>(rng.NextUint64(pool.size()))]);
  }

  rtr::core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01;

  auto cluster =
      std::make_shared<const rtr::dist::Cluster>(graph_ptr, num_gps);

  std::printf("%-12s %-6s %8s %10s %9s %9s %9s %6s\n", "backend", "cache",
              "workers", "QPS", "p50 ms", "p95 ms", "p99 ms", "hit%");
  const int worker_counts[] = {1, 2, 4, 8};
  for (const char* backend : {"local", "distributed"}) {
    std::shared_ptr<const rtr::dist::Cluster> maybe_cluster =
        backend[0] == 'l' ? nullptr : cluster;
    for (bool cache : {false, true}) {
      for (int workers : worker_counts) {
        rtr::serve::ServiceStats stats = RunConfig(
            graph_ptr, maybe_cluster, cache, workers, stream, params);
        uint64_t lookups = stats.cache_hits + stats.cache_misses;
        std::printf("%-12s %-6s %8d %10.1f %9.2f %9.2f %9.2f %5.1f%%\n",
                    backend, cache ? "on" : "off", workers, stats.qps,
                    stats.p50_millis, stats.p95_millis, stats.p99_millis,
                    lookups == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(stats.cache_hits) /
                              static_cast<double>(lookups));
      }
      std::printf("\n");
    }
  }
  std::printf("Expected shape: QPS grows >1x from 1 to 4 workers (shared\n"
              "immutable graph, per-query state on worker stacks), and the\n"
              "cache-on rows trade engine work for hash lookups on the\n"
              "repeated half of the stream.\n");
  return 0;
}
