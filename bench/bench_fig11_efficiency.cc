// Reproduces Fig. 11: (a) average top-10 query time of Naive / G+S / Gupta /
// Sarkar / 2SBound under slack eps in {0.01, 0.02, 0.03} on the full BibNet;
// (b) 2SBound's approximation quality (NDCG, precision, Kendall tau against
// the exact ranking) and time as eps varies.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/twosbound.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "ranking/measure.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using rtr::NodeId;
using rtr::core::TopKParams;
using rtr::core::TopKResult;
using rtr::core::TopKScheme;
using rtr::eval::TablePrinter;

std::vector<NodeId> SampleQueries(const rtr::Graph& g, int count,
                                  uint64_t seed) {
  rtr::Rng rng(seed);
  std::vector<NodeId> queries;
  while (static_cast<int>(queries.size()) < count) {
    NodeId v = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    if (g.out_degree(v) > 0) queries.push_back(v);
  }
  return queries;
}

std::vector<NodeId> EntryNodes(const TopKResult& result) {
  std::vector<NodeId> nodes;
  for (const auto& entry : result.entries) nodes.push_back(entry.node);
  return nodes;
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Fig. 11 — efficiency and approximation quality of 2SBound",
      "K = 10, alpha = 0.25, m_f = 100, m_t = 5 on the full synthetic "
      "BibNet.");
  const int num_queries = rtr::bench::NumEfficiencyQueries();
  rtr::datasets::BibNet bibnet = rtr::bench::MakeFullBibNet();
  const rtr::Graph& g = bibnet.graph();
  std::printf("full BibNet: %zu nodes, %zu arcs, %d queries\n\n",
              g.num_nodes(), g.num_arcs(), num_queries);
  std::vector<NodeId> queries = SampleQueries(g, num_queries, 1101);

  const double epsilons[] = {0.01, 0.02, 0.03};
  const TopKScheme schemes[] = {TopKScheme::kNaive, TopKScheme::kGPlusS,
                                TopKScheme::kSarkar, TopKScheme::kGupta,
                                TopKScheme::k2SBound};

  // Exact scores per query (reused for quality metrics and = Naive's work).
  std::printf("computing exact reference rankings (Naive)...\n");
  std::vector<std::vector<double>> exact_scores;
  std::vector<double> naive_times;
  for (NodeId q : queries) {
    rtr::WallTimer timer;
    exact_scores.push_back(rtr::core::ExactRoundTripRankScores(g, {q}));
    naive_times.push_back(timer.ElapsedMillis());
  }

  // ---- Fig. 11(a): query time per scheme and slack.
  TablePrinter time_table({"Scheme", "eps=0.01 (ms)", "eps=0.02 (ms)",
                           "eps=0.03 (ms)"});
  // Collected for Fig. 11(b):
  std::vector<TopKResult> twosbound_results[3];
  std::vector<double> twosbound_times[3];

  for (TopKScheme scheme : schemes) {
    std::vector<std::string> row = {rtr::core::TopKSchemeName(scheme)};
    for (size_t e = 0; e < 3; ++e) {
      if (scheme == TopKScheme::kNaive) {
        // Naive ignores the slack: reuse the measured exact runs.
        row.push_back(TablePrinter::FormatDouble(
            rtr::Summarize(naive_times).mean, 1));
        continue;
      }
      TopKParams params;
      params.k = 10;
      params.epsilon = epsilons[e];
      params.scheme = scheme;
      std::vector<double> times;
      for (NodeId q : queries) {
        rtr::WallTimer timer;
        TopKResult result = rtr::core::TopKRoundTripRank(g, {q}, params).value();
        times.push_back(timer.ElapsedMillis());
        if (scheme == TopKScheme::k2SBound) {
          twosbound_results[e].push_back(std::move(result));
          twosbound_times[e].push_back(times.back());
        }
      }
      row.push_back(TablePrinter::FormatDouble(rtr::Summarize(times).mean, 1));
    }
    time_table.AddRow(std::move(row));
    std::printf("  done: %s\n", rtr::core::TopKSchemeName(scheme));
  }
  std::printf("\nFig. 11(a) — average query time:\n");
  time_table.Print();

  rtr::SummaryStats t001 = rtr::Summarize(twosbound_times[0]);
  std::printf("\n2SBound at eps=0.01: %.0f ms, 99%% CI +/- %.0f ms\n",
              t001.mean, t001.ConfidenceHalfWidth(0.99));

  // ---- Fig. 11(b): 2SBound quality vs slack.
  std::printf("\nFig. 11(b) — 2SBound approximation quality vs slack:\n");
  TablePrinter quality_table(
      {"eps", "NDCG", "precision", "Kendall tau", "time (ms)"});
  for (size_t e = 0; e < 3; ++e) {
    double ndcg = 0.0, precision = 0.0, tau = 0.0;
    for (size_t i = 0; i < queries.size(); ++i) {
      const std::vector<double>& exact = exact_scores[i];
      std::vector<NodeId> exact_topk = rtr::ranking::TopKNodes(exact, 10);
      std::vector<NodeId> approx = EntryNodes(twosbound_results[e][i]);
      ndcg += rtr::eval::NdcgAtK(approx, exact_topk, 10);
      precision += rtr::eval::PrecisionAtK(approx, exact_topk, 10);
      tau += rtr::eval::KendallTauAgainstScores(approx, exact);
    }
    double n = static_cast<double>(queries.size());
    quality_table.AddRow({TablePrinter::FormatDouble(epsilons[e], 2),
                          TablePrinter::FormatDouble(ndcg / n, 4),
                          TablePrinter::FormatDouble(precision / n, 4),
                          TablePrinter::FormatDouble(tau / n, 4),
                          TablePrinter::FormatDouble(
                              rtr::Summarize(twosbound_times[e]).mean, 1)});
  }
  quality_table.Print();
  std::printf(
      "\nShape check (paper): 2SBound is ~two orders of magnitude faster\n"
      "than Naive and 2-10x faster than G+S/Gupta/Sarkar; quality stays\n"
      "high (>= 0.9) while time shrinks as the slack grows.\n");
  return 0;
}
