#ifndef RTR_BENCH_BENCH_COMMON_H_
#define RTR_BENCH_BENCH_COMMON_H_

// Shared plumbing for the experiment-reproduction binaries (one binary per
// table/figure of the paper; see DESIGN.md §3 "Experiment binaries").
//
// Environment knobs:
//   RTR_QUERIES        — test queries per effectiveness task   (default 120)
//   RTR_DEV_QUERIES    — development queries for beta tuning   (default 80)
//   RTR_EFF_QUERIES    — queries per efficiency measurement    (default 30)
//   RTR_SCALE_PAPERS   — paper count of the "full" BibNet      (default 40000)
//   RTR_SCALE_CONCEPTS — concept count of the "full" QLog      (default 12000)
//   RTR_NUM_THREADS    — util::ParallelFor pool width (default: hardware);
//                        results are bit-identical at any setting, see
//                        DESIGN.md §7. PrintBanner echoes the active value.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "datasets/bibnet.h"
#include "datasets/qlog.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "graph/types.h"
#include "util/logging.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace rtr::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

inline int NumTestQueries() { return EnvInt("RTR_QUERIES", 120); }
inline int NumDevQueries() { return EnvInt("RTR_DEV_QUERIES", 80); }
inline int NumEfficiencyQueries() { return EnvInt("RTR_EFF_QUERIES", 30); }

// The effectiveness-scale BibNet (≈17k nodes / 340k arcs, the counterpart
// of the paper's hand-picked 28-venue subgraph).
inline datasets::BibNet MakeEffectivenessBibNet() {
  datasets::BibNetConfig config;  // library defaults target this scale
  return datasets::BibNet::Generate(config).value();
}

// The efficiency-scale BibNet (the counterpart of the paper's full graph),
// used by Figs. 11-13.
inline datasets::BibNet MakeFullBibNet() {
  datasets::BibNetConfig config;
  config.num_papers = EnvInt("RTR_SCALE_PAPERS", 40000);
  config.num_authors = config.num_papers / 4;
  return datasets::BibNet::Generate(config).value();
}

inline datasets::QLog MakeEffectivenessQLog() {
  datasets::QLogConfig config;
  return datasets::QLog::Generate(config).value();
}

inline datasets::QLog MakeFullQLog() {
  datasets::QLogConfig config;
  config.num_concepts = EnvInt("RTR_SCALE_CONCEPTS", 12000);
  config.num_portal_urls = 80;
  return datasets::QLog::Generate(config).value();
}

// Shared load-or-build for benches that only need a bare Graph: returns
// `build()` unless RTR_SNAPSHOT_DIR is set, in which case the graph is
// cached as "<dir>/<name>.rtrsnap" — built and snapshotted on the first
// run, then restored by the binary snapshot loader (one bulk read, no
// generator/GraphBuilder replay) on every later run. The cache key is the
// caller's responsibility: fold every scale knob into `name`.
inline Graph LoadOrBuildGraph(const std::string& name,
                              const std::function<Graph()>& build) {
  const char* dir = std::getenv("RTR_SNAPSHOT_DIR");
  if (dir == nullptr || *dir == '\0') return build();
  const std::string path = std::string(dir) + "/" + name + ".rtrsnap";
  StatusOr<Graph> cached = LoadGraphSnapshotFromFile(path);
  if (cached.ok()) return std::move(cached).value();
  Graph g = build();
  Status saved = SaveGraphSnapshotToFile(g, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "warning: cannot cache snapshot %s: %s\n",
                 path.c_str(), saved.ToString().c_str());
  }
  return g;
}

// Draws random nodes until one with at least one outgoing arc comes up —
// dangling nodes cannot anchor a random walk, so every query harness
// rejects them. Returns kInvalidNode after `max_attempts` failed draws
// (e.g., a pathological graph with almost only dangling nodes). Shared by
// the distributed example, the snapshot experiments, and the serve bench.
inline NodeId SampleQueryNode(const Graph& g, Rng& rng,
                              int max_attempts = 1000) {
  if (g.num_nodes() == 0) return kInvalidNode;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    NodeId v = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    if (g.out_degree(v) > 0) return v;
  }
  return kInvalidNode;
}

// Same rejection sampling restricted to a candidate list (e.g., one node
// type, like QLog phrases for the serve query stream).
inline NodeId SampleQueryNode(const Graph& g,
                              const std::vector<NodeId>& candidates,
                              Rng& rng, int max_attempts = 1000) {
  if (candidates.empty()) return kInvalidNode;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    NodeId v = candidates[static_cast<size_t>(
        rng.NextUint64(candidates.size()))];
    if (g.out_degree(v) > 0) return v;
  }
  return kInvalidNode;
}

inline void PrintBanner(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("(kernel threads: %d — set RTR_NUM_THREADS to override)\n",
              rtr::util::NumThreads());
  std::printf("==============================================================\n");
}

}  // namespace rtr::bench

#endif  // RTR_BENCH_BENCH_COMMON_H_
