#ifndef RTR_BENCH_ALLOC_COUNTER_H_
#define RTR_BENCH_ALLOC_COUNTER_H_

// Global operator-new interposer for allocation accounting in benchmark
// binaries. Include this header in EXACTLY ONE translation unit of a
// binary (it *defines* the replaceable global allocation functions); every
// heap allocation made by that binary then bumps a process-wide counter,
// which bench_micro uses to assert the steady-state 2SBound query path is
// allocation-free (ISSUE 4 / DESIGN.md §7).
//
// Deliberately bench-only: the library itself must stay free of global
// operator-new replacement so embedders keep their own allocators.

#include <atomic>
#include <cstdlib>
#include <new>

namespace rtr::bench {

inline std::atomic<uint64_t> g_alloc_count{0};

// Number of operator-new calls (any variant) since process start.
inline uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace rtr::bench

namespace rtr::bench::internal {

inline void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) std::abort();  // benches do not recover from OOM
  return p;
}

inline void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size) != 0) std::abort();
  return p;
}

}  // namespace rtr::bench::internal

// Replaceable global allocation functions ([new.delete]); definitions, so
// one TU per binary only. Sized/unsized and aligned/unaligned deletes all
// funnel into free(), which is correct for malloc/posix_memalign memory.
void* operator new(std::size_t size) {
  return rtr::bench::internal::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return rtr::bench::internal::CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return rtr::bench::internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return rtr::bench::internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(alignment));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return rtr::bench::internal::CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return rtr::bench::internal::CountedAlloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // RTR_BENCH_ALLOC_COUNTER_H_
