// Reproduces Fig. 10: NDCG@5 of RoundTripRank+ against *customized*
// dual-sensed baselines — each baseline gains a tunable beta (weights
// (1-beta, beta) on its two sub-measures) tuned on the same development
// queries as RoundTripRank+. The paper stresses that these "+"
// customizations are the authors' own extension of the baselines.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/round_trip_rank.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "ranking/combinators.h"
#include "ranking/objectrank.h"
#include "ranking/tcommute.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using rtr::datasets::EvalQuery;
using rtr::datasets::EvalTaskSet;
using rtr::eval::MeasureFactory;
using rtr::eval::TablePrinter;
using rtr::ranking::ProximityMeasure;

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double x : values) sum += x;
  return sum / values.size();
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Fig. 10 — RoundTripRank+ vs customized dual-sensed baselines",
      "NDCG@5; every measure (including each baseline's '+' variant) gets "
      "its own\nbeta tuned on the shared development queries.");
  const int num_test = rtr::bench::NumTestQueries();
  const int num_dev = rtr::bench::NumDevQueries();
  rtr::WallTimer timer;

  rtr::datasets::BibNet bibnet = rtr::bench::MakeEffectivenessBibNet();
  rtr::datasets::QLog qlog = rtr::bench::MakeEffectivenessQLog();
  std::vector<EvalTaskSet> tasks;
  tasks.push_back(bibnet.MakeAuthorTask(num_test, num_dev, 101).value());
  tasks.push_back(bibnet.MakeVenueTask(num_test, num_dev, 102).value());
  tasks.push_back(qlog.MakeRelevantUrlTask(num_test, num_dev, 103).value());
  tasks.push_back(
      qlog.MakeEquivalentPhraseTask(num_test, num_dev, 104).value());

  const char* measure_names[] = {"RoundTripRank+", "TCommute+",
                                 "ObjSqrtInv+", "Harmonic+", "Arithmetic+"};
  const size_t num_measures = 5;

  // ndcg[task][measure][query] at K = 5.
  std::vector<std::vector<std::vector<double>>> ndcg(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    const EvalTaskSet& task = tasks[t];
    std::printf("tuning and evaluating %s ...\n", task.name.c_str());

    // Shared scorers for the factories that allow it. ObjectRank walks the
    // authority-flow (uniform-weight) view of the graph.
    auto scorer = std::make_shared<rtr::ranking::FTScorer>(task.graph);
    auto authority_view =
        std::make_shared<rtr::Graph>(rtr::UniformWeightCopy(task.graph));
    rtr::ranking::WalkParams damped;
    damped.alpha = 0.25;  // the ObjectRank damping d
    auto objectrank_scorer =
        std::make_shared<rtr::ranking::FTScorer>(*authority_view, damped);

    std::vector<MeasureFactory> factories;
    factories.push_back([&](double beta) {
      return rtr::core::MakeRoundTripRankPlusMeasure(scorer, beta);
    });
    factories.push_back([&task](double beta) {
      rtr::ranking::TCommuteParams params;
      params.beta = beta;
      params.name = "TCommute+";
      return rtr::ranking::MakeTCommuteMeasure(task.graph, params);
    });
    factories.push_back([&](double beta) {
      return rtr::ranking::MakeObjSqrtInvPlusFromScorer(objectrank_scorer,
                                                        beta);
    });
    factories.push_back([&](double beta) {
      return rtr::ranking::MakeHarmonicMeasure(scorer, beta, "Harmonic+");
    });
    factories.push_back([&](double beta) {
      return rtr::ranking::MakeArithmeticMeasure(scorer, beta, "Arithmetic+");
    });

    std::vector<std::unique_ptr<ProximityMeasure>> tuned;
    for (size_t m = 0; m < factories.size(); ++m) {
      double beta = rtr::eval::TuneBeta(task, factories[m],
                                        rtr::eval::DefaultBetaGrid());
      std::printf("  %-14s beta* = %.1f\n", measure_names[m], beta);
      tuned.push_back(factories[m](beta));
    }

    ndcg[t].assign(num_measures, {});
    for (const EvalQuery& query : task.test_queries) {
      for (size_t m = 0; m < tuned.size(); ++m) {
        ndcg[t][m].push_back(rtr::eval::QueryNdcg(
            task.graph, *tuned[m], query, task.target_type, 5));
      }
    }
  }

  std::vector<std::string> header = {"Measure"};
  for (const EvalTaskSet& task : tasks) header.push_back(task.name);
  header.push_back("Average");
  std::printf("\n");
  TablePrinter table(header);
  for (size_t m = 0; m < num_measures; ++m) {
    std::vector<std::string> row = {measure_names[m]};
    double avg = 0.0;
    for (size_t t = 0; t < tasks.size(); ++t) {
      double mean = Mean(ndcg[t][m]);
      avg += mean / tasks.size();
      row.push_back(TablePrinter::FormatDouble(mean, 4));
    }
    row.push_back(TablePrinter::FormatDouble(avg, 4));
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nPaired two-tail t-tests (pooled per-query NDCG@5, "
              "RoundTripRank+ vs customized baseline):\n");
  std::vector<double> rtr_pooled;
  for (size_t t = 0; t < tasks.size(); ++t) {
    rtr_pooled.insert(rtr_pooled.end(), ndcg[t][0].begin(), ndcg[t][0].end());
  }
  for (size_t m = 1; m < num_measures; ++m) {
    std::vector<double> pooled;
    for (size_t t = 0; t < tasks.size(); ++t) {
      pooled.insert(pooled.end(), ndcg[t][m].begin(), ndcg[t][m].end());
    }
    rtr::PairedTTestResult test = rtr::PairedTTest(rtr_pooled, pooled);
    std::printf("  vs %-13s mean diff %+.4f, t = %6.2f, p %s0.01 %s\n",
                measure_names[m], test.mean_difference, test.t_statistic,
                test.p_value < 0.01 ? "<" : ">=",
                test.SignificantAt(0.01) ? "(significant)" : "");
  }
  std::printf("\nShape check (paper): RoundTripRank+ still best; baselines "
              "uneven across tasks.  elapsed %.1fs\n",
              timer.ElapsedSeconds());
  return 0;
}
