// Reproduces Fig. 12: active-set size and query time (99% confidence
// intervals) on five cumulative snapshots of each graph, the i-th snapshot
// served by i graph processors.
#include <cstdio>
#include <vector>

#include "eval/experiment.h"
#include "snapshot_experiment.h"

namespace {

using rtr::bench::SnapshotPoint;
using rtr::eval::TablePrinter;

void PrintTable(const char* title,
                const std::vector<SnapshotPoint>& points) {
  std::printf("\n%s\n", title);
  TablePrinter table({"Timestamp", "GPs", "Snapshot MB", "Active set MB",
                      "99% CI", "Query ms", "99% CI"});
  for (const SnapshotPoint& point : points) {
    table.AddRow(
        {point.label, std::to_string(point.num_gps),
         TablePrinter::FormatDouble(point.snapshot_bytes / 1e6, 1),
         TablePrinter::FormatDouble(point.active_set_mb.mean, 3),
         "+/- " + TablePrinter::FormatDouble(
                      point.active_set_mb.ConfidenceHalfWidth(0.99), 3),
         TablePrinter::FormatDouble(point.query_ms.mean, 1),
         "+/- " + TablePrinter::FormatDouble(
                      point.query_ms.ConfidenceHalfWidth(0.99), 1)});
  }
  table.Print();
}

}  // namespace

int main() {
  rtr::bench::PrintBanner(
      "Fig. 12 — active set size and query time on growing graphs",
      "Five cumulative snapshots per dataset; snapshot i on i GPs; K = 10, "
      "eps = 0.01.");
  const int num_queries = rtr::bench::NumEfficiencyQueries();
  std::printf("%d queries per snapshot\n", num_queries);

  std::vector<SnapshotPoint> bibnet =
      rtr::bench::RunBibNetSnapshots(num_queries);
  PrintTable("(a) BibNet snapshots", bibnet);
  std::vector<SnapshotPoint> qlog = rtr::bench::RunQLogSnapshots(num_queries);
  PrintTable("(b) QLog snapshots", qlog);

  std::printf(
      "\nShape check (paper): the active set stays a tiny fraction of the\n"
      "snapshot and is strongly correlated with query time; QLog has larger\n"
      "snapshots-to-active-set ratios thanks to its lower average degree.\n");
  return 0;
}
